// Package stats provides the histogram and series tooling used to
// regenerate the paper's figures: log-scale frequency histograms (error
// distributions, Fig. 8; max/min-ratio distributions, Fig. 7) and labelled
// (x, y) series (goodput curves, accuracy curves).
//
// Integration status: on the data path as well as the presentation layer.
// A telemetry tenant on the multi-tenant switch (aggservice's
// ClassTelemetry) maintains a LogHistogram of sample sizes per job and
// drains its bins over observer frames (examples/telemetry checks the
// drained bins exactly against a host-side mirror), alongside the figure
// output consumed by cmd/fpisa-bench and examples/allreduce and the
// analysis shaping in internal/gradients, internal/train, and
// internal/perfmodel.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LogHistogram buckets positive values by log-base exponent: bin i covers
// [base^(minExp+i), base^(minExp+i+1)).
type LogHistogram struct {
	Base   float64
	MinExp int
	MaxExp int
	bins   []uint64
	zeros  uint64
	under  uint64
	over   uint64
	total  uint64
}

// NewLogHistogram creates a histogram with one bin per integer exponent in
// [minExp, maxExp).
func NewLogHistogram(base float64, minExp, maxExp int) (*LogHistogram, error) {
	if base <= 1 {
		return nil, fmt.Errorf("stats: log base %g must exceed 1", base)
	}
	if maxExp <= minExp {
		return nil, fmt.Errorf("stats: empty exponent range [%d,%d)", minExp, maxExp)
	}
	return &LogHistogram{Base: base, MinExp: minExp, MaxExp: maxExp,
		bins: make([]uint64, maxExp-minExp)}, nil
}

// MustNewLogHistogram panics on error.
func MustNewLogHistogram(base float64, minExp, maxExp int) *LogHistogram {
	h, err := NewLogHistogram(base, minExp, maxExp)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe adds one sample. Non-positive and NaN samples land in the zero
// bucket (exact zeros are common in error distributions and reported
// separately); +Inf lands in the overflow bucket.
func (h *LogHistogram) Observe(v float64) {
	h.total++
	if v <= 0 || math.IsNaN(v) {
		h.zeros++
		return
	}
	if math.IsInf(v, 1) {
		// math.Log(+Inf) = +Inf, and float64->int conversion of +Inf is
		// platform-dependent (min-int on amd64) — bucket it explicitly.
		h.over++
		return
	}
	e := int(math.Floor(math.Log(v) / math.Log(h.Base)))
	switch {
	case e < h.MinExp:
		h.under++
	case e >= h.MaxExp:
		h.over++
	default:
		h.bins[e-h.MinExp]++
	}
}

// Total returns the sample count.
func (h *LogHistogram) Total() uint64 { return h.total }

// Zeros returns the non-positive sample count.
func (h *LogHistogram) Zeros() uint64 { return h.zeros }

// Bin is one histogram bucket.
type Bin struct {
	// Lo and Hi are the bucket bounds (base^exp).
	Lo, Hi float64
	// Exp is the low bound's exponent.
	Exp int
	// Count and Frequency describe the bucket's mass.
	Count     uint64
	Frequency float64
}

// Bins returns the buckets (excluding zero/under/overflow).
func (h *LogHistogram) Bins() []Bin {
	out := make([]Bin, len(h.bins))
	for i, c := range h.bins {
		e := h.MinExp + i
		b := Bin{Lo: math.Pow(h.Base, float64(e)), Hi: math.Pow(h.Base, float64(e+1)), Exp: e, Count: c}
		if h.total > 0 {
			b.Frequency = float64(c) / float64(h.total)
		}
		out[i] = b
	}
	return out
}

// FractionBelow returns the fraction of positive samples below base^exp
// (the Fig. 7 "≈83% of ratios below 2^7" statistic), counting underflows.
// Non-positive and NaN samples are excluded from both the numerator and
// the denominator.
func (h *LogHistogram) FractionBelow(exp int) float64 {
	pos := h.total - h.zeros
	if pos == 0 {
		return 0
	}
	sum := h.under
	for i, c := range h.bins {
		if h.MinExp+i >= exp {
			break
		}
		sum += c
	}
	return float64(sum) / float64(pos)
}

// FractionBetween returns the mass with values in [base^lo, base^hi).
func (h *LogHistogram) FractionBetween(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	var sum uint64
	for i, c := range h.bins {
		e := h.MinExp + i
		if e >= lo && e < hi {
			sum += c
		}
	}
	return float64(sum) / float64(h.total)
}

// String renders an ASCII bar chart.
func (h *LogHistogram) String() string {
	var b strings.Builder
	maxFreq := 0.0
	bins := h.Bins()
	for _, bin := range bins {
		if bin.Frequency > maxFreq {
			maxFreq = bin.Frequency
		}
	}
	if h.zeros > 0 {
		fmt.Fprintf(&b, "%12s %7.4f\n", "zero", float64(h.zeros)/float64(h.total))
	}
	for _, bin := range bins {
		if bin.Count == 0 {
			continue
		}
		width := 0
		if maxFreq > 0 {
			width = int(bin.Frequency / maxFreq * 50)
		}
		fmt.Fprintf(&b, "%5g^%-5d %7.4f %s\n", h.Base, bin.Exp, bin.Frequency, strings.Repeat("#", width))
	}
	return b.String()
}

// Series is one labelled curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// YAt returns the Y value for an exact X, or ok=false.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// FormatTable renders a set of series sharing X values as a column table.
func FormatTable(xLabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%18s", s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i, x := range series[0].X {
		fmt.Fprintf(&b, "%-14g", x)
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%18.4g", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation on a
// sorted copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }
