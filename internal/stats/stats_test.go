package stats

import (
	"math"
	"strings"
	"testing"
)

func TestLogHistogramBinning(t *testing.T) {
	h := MustNewLogHistogram(2, 0, 8)
	h.Observe(1)   // [2^0,2^1)
	h.Observe(1.5) // [2^0,2^1)
	h.Observe(4)   // [2^2,2^3)
	h.Observe(0)   // zero bucket
	h.Observe(0.1) // underflow
	h.Observe(512) // overflow

	bins := h.Bins()
	if bins[0].Count != 2 {
		t.Errorf("bin 2^0 count = %d, want 2", bins[0].Count)
	}
	if bins[2].Count != 1 {
		t.Errorf("bin 2^2 count = %d", bins[2].Count)
	}
	if h.Zeros() != 1 || h.Total() != 6 {
		t.Errorf("zeros=%d total=%d", h.Zeros(), h.Total())
	}
	if f := bins[0].Frequency; math.Abs(f-2.0/6) > 1e-12 {
		t.Errorf("frequency = %g", f)
	}
}

func TestLogHistogramBase10(t *testing.T) {
	h := MustNewLogHistogram(10, -20, 1)
	h.Observe(1e-9)
	h.Observe(5e-9)
	h.Observe(1e-15)
	if got := h.FractionBetween(-10, -8); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("FractionBetween = %g", got)
	}
}

func TestFractionBelow(t *testing.T) {
	h := MustNewLogHistogram(2, 0, 20)
	for i := 0; i < 83; i++ {
		h.Observe(3) // 2^1..2^2
	}
	for i := 0; i < 17; i++ {
		h.Observe(1000) // 2^9..2^10
	}
	if got := h.FractionBelow(7); math.Abs(got-0.83) > 1e-9 {
		t.Errorf("FractionBelow(7) = %g, want 0.83", got)
	}
	if got := h.FractionBelow(20); got != 1 {
		t.Errorf("FractionBelow(max) = %g", got)
	}
}

func TestLogHistogramValidation(t *testing.T) {
	if _, err := NewLogHistogram(1, 0, 4); err == nil {
		t.Error("base 1 accepted")
	}
	if _, err := NewLogHistogram(2, 4, 4); err == nil {
		t.Error("empty range accepted")
	}
}

func TestLogHistogramString(t *testing.T) {
	h := MustNewLogHistogram(2, 0, 4)
	h.Observe(1)
	h.Observe(0)
	s := h.String()
	if !strings.Contains(s, "zero") || !strings.Contains(s, "#") {
		t.Errorf("render:\n%s", s)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "goodput"
	s.Add(2, 48)
	s.Add(4, 92)
	if y, ok := s.YAt(4); !ok || y != 92 {
		t.Errorf("YAt(4) = %g,%v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Error("YAt(3) should miss")
	}
	table := FormatTable("cores", []Series{s})
	if !strings.Contains(table, "goodput") || !strings.Contains(table, "92") {
		t.Errorf("table:\n%s", table)
	}
}

func TestMeanQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %g", Median(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if Mean(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty inputs should yield 0")
	}
	// Quantile must not mutate its input.
	if xs[0] != 4 {
		t.Error("Quantile sorted the caller's slice")
	}
}

// TestLogHistogramInfNaN is the regression test for Observe(+Inf):
// math.Log(+Inf) is +Inf and float64→int conversion of +Inf is
// platform-dependent (min-int on amd64), so +Inf used to land in the
// UNDERflow counter. It must land in overflow; NaN and -Inf join the zero
// bucket like every other non-positive/unordered sample.
func TestLogHistogramInfNaN(t *testing.T) {
	h := MustNewLogHistogram(2, 0, 8)
	h.Observe(math.Inf(1))
	if h.over != 1 || h.under != 0 {
		t.Fatalf("+Inf: over=%d under=%d, want over=1 under=0", h.over, h.under)
	}
	h.Observe(math.Inf(-1))
	h.Observe(math.NaN())
	if h.zeros != 2 {
		t.Fatalf("-Inf and NaN: zeros=%d, want 2", h.zeros)
	}
	if h.Total() != 3 {
		t.Fatalf("total=%d, want 3", h.Total())
	}
	// +Inf is above every finite threshold: it must never count as below.
	if got := h.FractionBelow(8); got != 0 {
		t.Fatalf("FractionBelow(8) with only +Inf positive = %v, want 0", got)
	}
	// None of the unordered samples reach a finite bin.
	for _, b := range h.Bins() {
		if b.Count != 0 {
			t.Fatalf("bin 2^%d has count %d from non-finite samples", b.Exp, b.Count)
		}
	}
}

// TestFractionBelowExcludesNonPositive pins the reconciled contract: the
// statistic is the fraction of POSITIVE samples below base^exp, so zeros,
// negatives and NaN appear in neither the numerator nor the denominator.
func TestFractionBelowExcludesNonPositive(t *testing.T) {
	h := MustNewLogHistogram(2, 0, 8)
	h.Observe(1) // 2^0 — below 2^4
	h.Observe(2) // 2^1 — below 2^4
	h.Observe(32)
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.NaN())
	if got := h.FractionBelow(4); got != 2.0/3.0 {
		t.Fatalf("FractionBelow(4) = %v, want 2/3 (zeros excluded both sides)", got)
	}
	// Underflows are positive and count as below.
	h.Observe(0.25)
	if got := h.FractionBelow(4); got != 3.0/4.0 {
		t.Fatalf("FractionBelow(4) with underflow = %v, want 3/4", got)
	}
}

// TestLogHistogramEmpty: an empty histogram answers every statistic with
// zero instead of dividing by zero.
func TestLogHistogramEmpty(t *testing.T) {
	h := MustNewLogHistogram(2, 0, 8)
	if got := h.FractionBelow(4); got != 0 {
		t.Fatalf("empty FractionBelow = %v", got)
	}
	if got := h.FractionBetween(0, 8); got != 0 {
		t.Fatalf("empty FractionBetween = %v", got)
	}
	if h.Total() != 0 || h.Zeros() != 0 {
		t.Fatalf("empty totals: %d/%d", h.Total(), h.Zeros())
	}
	for _, b := range h.Bins() {
		if b.Count != 0 || b.Frequency != 0 {
			t.Fatalf("empty bin 2^%d: %+v", b.Exp, b)
		}
	}
	if s := h.String(); s != "" {
		t.Fatalf("empty histogram renders %q", s)
	}
}
