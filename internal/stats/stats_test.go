package stats

import (
	"math"
	"strings"
	"testing"
)

func TestLogHistogramBinning(t *testing.T) {
	h := MustNewLogHistogram(2, 0, 8)
	h.Observe(1)   // [2^0,2^1)
	h.Observe(1.5) // [2^0,2^1)
	h.Observe(4)   // [2^2,2^3)
	h.Observe(0)   // zero bucket
	h.Observe(0.1) // underflow
	h.Observe(512) // overflow

	bins := h.Bins()
	if bins[0].Count != 2 {
		t.Errorf("bin 2^0 count = %d, want 2", bins[0].Count)
	}
	if bins[2].Count != 1 {
		t.Errorf("bin 2^2 count = %d", bins[2].Count)
	}
	if h.Zeros() != 1 || h.Total() != 6 {
		t.Errorf("zeros=%d total=%d", h.Zeros(), h.Total())
	}
	if f := bins[0].Frequency; math.Abs(f-2.0/6) > 1e-12 {
		t.Errorf("frequency = %g", f)
	}
}

func TestLogHistogramBase10(t *testing.T) {
	h := MustNewLogHistogram(10, -20, 1)
	h.Observe(1e-9)
	h.Observe(5e-9)
	h.Observe(1e-15)
	if got := h.FractionBetween(-10, -8); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("FractionBetween = %g", got)
	}
}

func TestFractionBelow(t *testing.T) {
	h := MustNewLogHistogram(2, 0, 20)
	for i := 0; i < 83; i++ {
		h.Observe(3) // 2^1..2^2
	}
	for i := 0; i < 17; i++ {
		h.Observe(1000) // 2^9..2^10
	}
	if got := h.FractionBelow(7); math.Abs(got-0.83) > 1e-9 {
		t.Errorf("FractionBelow(7) = %g, want 0.83", got)
	}
	if got := h.FractionBelow(20); got != 1 {
		t.Errorf("FractionBelow(max) = %g", got)
	}
}

func TestLogHistogramValidation(t *testing.T) {
	if _, err := NewLogHistogram(1, 0, 4); err == nil {
		t.Error("base 1 accepted")
	}
	if _, err := NewLogHistogram(2, 4, 4); err == nil {
		t.Error("empty range accepted")
	}
}

func TestLogHistogramString(t *testing.T) {
	h := MustNewLogHistogram(2, 0, 4)
	h.Observe(1)
	h.Observe(0)
	s := h.String()
	if !strings.Contains(s, "zero") || !strings.Contains(s, "#") {
		t.Errorf("render:\n%s", s)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "goodput"
	s.Add(2, 48)
	s.Add(4, 92)
	if y, ok := s.YAt(4); !ok || y != 92 {
		t.Errorf("YAt(4) = %g,%v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Error("YAt(3) should miss")
	}
	table := FormatTable("cores", []Series{s})
	if !strings.Contains(table, "goodput") || !strings.Contains(table, "92") {
		t.Errorf("table:\n%s", table)
	}
}

func TestMeanQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("Median = %g", Median(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if Mean(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty inputs should yield 0")
	}
	// Quantile must not mutate its input.
	if xs[0] != 4 {
		t.Error("Quantile sorted the caller's slice")
	}
}
