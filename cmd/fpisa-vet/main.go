// Command fpisa-vet runs the repository's custom static-analysis suite
// (internal/analysis): lockedcall, mixedatomic, wirebounds, and retaincap,
// the four machine-checked invariants the switch data plane relies on.
//
// Standalone, over package patterns:
//
//	fpisa-vet [-run analyzer,analyzer] [packages]
//
// or as a go vet tool, which integrates with the build cache:
//
//	go vet -vettool=$(which fpisa-vet) ./...
//
// Exit status is 0 when the tree is clean, 2 when findings are reported,
// and 1 on driver errors. False positives are suppressed in source with a
// documented `//fpisa:ignore <analyzer> <reason>` comment.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"log"
	"os"
	"strings"

	"fpisa/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpisa-vet: ")

	// The go vet driver probes the tool's identity (for its action cache)
	// and flag set before handing it package config files; answer both
	// before ordinary flag parsing.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	runSpec := flag.String("run", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Parse()
	analyzers, err := analysis.ByName(*runSpec)
	if err != nil {
		log.Fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], analyzers))
	}
	os.Exit(standalone(args, analyzers))
}

// printVersion implements the `-V=full` probe: at least three fields with
// "version" second, and a third that changes whenever the tool's code
// does, so go vet's action cache is invalidated by rebuilds. Hashing the
// executable gives exactly that.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("sha256-%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("fpisa-vet version %s\n", id)
}

// standalone loads patterns with the go tool and runs the suite in one
// process, the mode used by developers and the CI lint job.
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run(".", patterns, analyzers)
	if err != nil {
		log.Print(err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the package-unit description the go vet driver writes for
// a vettool (see cmd/go/internal/work and x/tools unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package unit under `go vet -vettool`.
func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("parsing %s: %v", cfgPath, err)
		return 1
	}
	// The driver requires the facts file to exist even though this suite
	// exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("fpisa-vet: no facts\n"), 0o666); err != nil {
			log.Print(err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test-variant units (IDs like "pkg.test" or "pkg [pkg.test]")
	// re-check the same production sources plus generated test mains; the
	// suite's invariants target production code, so skip them rather than
	// report every finding twice.
	if strings.Contains(cfg.ID, ".test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Print(err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tpkg, info, err := analysis.CheckFiles(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Printf("type-checking %s: %v", cfg.ImportPath, err)
		return 1
	}
	pkg := &analysis.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	findings, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		log.Print(err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
