package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles fpisa-vet into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fpisa-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestVersionProbe checks the `-V=full` handshake go vet uses to identify
// the tool for its action cache: at least three fields, "version" second,
// third not "devel".
func TestVersionProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(strings.TrimSpace(string(out)))
	if len(f) < 3 || f[1] != "version" || f[2] == "devel" {
		t.Fatalf("-V=full printed %q; want \"fpisa-vet version <id>\"", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags printed %q; want []", out)
	}
}

// TestGoVetIntegration drives the real thing: `go vet -vettool` over the
// whole module must come back clean.
func TestGoVetIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the module")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("..", "..")
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out.String())
	}
}

// TestStandaloneFindings runs the standalone mode against a fixture tree
// with a known violation and checks the finding and exit status surface.
func TestStandaloneFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vetfixture\n\ngo 1.23\n")
	write("fixture.go", `package vetfixture

func DecodeThing(pkt []byte) byte {
	return pkt[0]
}
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on findings, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "[wirebounds]") {
		t.Fatalf("expected a wirebounds finding, got:\n%s", out.String())
	}
}
