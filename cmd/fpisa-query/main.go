// Command fpisa-query runs one of the five evaluated database queries
// (paper Table 2) against generated data, with both execution plans, and
// prints the results side by side:
//
//	fpisa-query -query "Top-N" -workers 2 -scale 1
//
// With -switch it instead talks to a running fpisa-switch daemon through
// the out-of-band observer frame (so the probe never disturbs a worker's
// learned return path). -job queries one tenant job's live stats; -admit
// and -evict drive the runtime lifecycle control plane (the daemon must
// run with -dynamic). -weight sets the admitted job's fair-scheduler
// weight, -profile its numeric profile (e.g. bf16/trunc or f32/rne/g2)
// and -class its workload class ("training", "query:TOPN:GROUPS" or
// "telemetry:GROUPS" — analytics tenants get pruning registers, group
// accumulators or telemetry sketches instead of the allreduce slot pool);
// the command prints the weight, profile, class and incarnation epoch the
// switch actually applied (echoed in the ack) and exits non-zero if the
// switch clamped a requested weight of 0 or applied a different profile
// or class than the one requested. -drain harvests (read-and-reset) an
// analytics tenant's registers: -kind groups, hh or hist, with
// -resetprune also clearing its pruning state:
//
//	fpisa-query -switch 127.0.0.1:9099 -job 1
//	fpisa-query -switch 127.0.0.1:9099 -admit 2 -weight 4 -profile bf16/trunc
//	fpisa-query -switch 127.0.0.1:9099 -admit 3 -class query:10:1024
//	fpisa-query -switch 127.0.0.1:9099 -drain 3 -kind groups -resetprune
//	fpisa-query -switch 127.0.0.1:9099 -evict 1
//
// All switch operations exit non-zero with the error on stderr when the
// switch refuses them (unknown job, no capacity, lifecycle disabled, …),
// so scripts can gate on the result.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/transport"

	"fpisa/internal/query"
)

func main() {
	name := flag.String("query", "Top-N", `query name (see "fpisa-bench -exp table2")`)
	workers := flag.Int("workers", 2, "worker partitions")
	scale := flag.Int("scale", 1, "dataset scale multiplier")
	rows := flag.Int("rows", 10, "result rows to print")
	swAddr := flag.String("switch", "", "address of a running fpisa-switch to operate on instead")
	job := flag.Int("job", 0, "job id to query (with -switch)")
	admit := flag.Int("admit", -1, "admit this job id at runtime (with -switch)")
	weight := flag.Int("weight", 1, "fair-scheduler weight for -admit (0 is clamped to 1 by the switch)")
	profile := flag.String("profile", "", `numeric profile for -admit, e.g. "f32/rne/g2" or "bf16/trunc" (empty = f32/trunc)`)
	class := flag.String("class", "", `workload class for -admit: "training", "query:TOPN:GROUPS" or "telemetry:GROUPS" (empty = training)`)
	evict := flag.Int("evict", -1, "evict this job id at runtime (with -switch)")
	drain := flag.Int("drain", -1, "drain this analytics job's state (with -switch and -kind)")
	kind := flag.String("kind", "groups", `what -drain harvests: "groups" (sum/utilization registers), "hh" (heavy hitters) or "hist" (size histogram)`)
	resetPrune := flag.Bool("resetprune", false, "with -drain: also clear the job's top-n and group-max pruning registers")
	timeout := flag.Duration("timeout", time.Second, "per-probe reply timeout (with -switch)")
	flag.Parse()
	weightSet, profileSet, classSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "weight":
			weightSet = true
		case "profile":
			profileSet = true
		case "class":
			classSet = true
		}
	})

	if *swAddr != "" {
		var err error
		switch {
		case *admit >= 0 && *evict >= 0:
			err = fmt.Errorf("-admit and -evict are mutually exclusive")
		case weightSet && *admit < 0:
			// Only -admit consumes a weight; silently discarding one on an
			// evict or stats probe would let an operator believe they
			// reweighted a tenant.
			err = fmt.Errorf("-weight only applies to -admit")
		case profileSet && *admit < 0:
			// Same guard for -profile: an ignored precision request must
			// not look applied.
			err = fmt.Errorf("-profile only applies to -admit")
		case classSet && *admit < 0:
			// And for -class: an ignored register ask must not look granted.
			err = fmt.Errorf("-class only applies to -admit")
		case *admit >= 0:
			err = admitRequest(os.Stdout, *swAddr, *admit, *weight, *profile, *class, *timeout)
		case *evict >= 0:
			err = evictRequest(os.Stdout, *swAddr, *evict, *timeout)
		case *drain >= 0:
			err = drainRequest(os.Stdout, *swAddr, *drain, *kind, *resetPrune, *timeout)
		default:
			err = queryJobStats(os.Stdout, *swAddr, *job, *timeout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpisa-query:", err)
			os.Exit(1)
		}
		return
	}

	q, err := query.QueryByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	sc := query.DefaultScale()
	sc.UserVisits *= *scale
	sc.Rankings *= *scale
	sc.LineItems *= *scale
	sc.Orders *= *scale
	sc.Customers *= *scale

	e := query.NewEngine(query.Generate(sc, *workers, 7))
	base, bCost := e.RunBaseline(q)
	accel, sCost, err := e.RunSwitch(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s — %s via %s\n\n", q.Desc.Name, q.Desc.FPOp, q.Desc.Method)
	fmt.Printf("%-12s %18s %18s\n", "key", "baseline", "FPISA")
	n := min(*rows, len(base.Entries))
	for i := 0; i < n; i++ {
		var av float64
		if i < len(accel.Entries) {
			av = accel.Entries[i].Val
		}
		fmt.Printf("%-12d %18.6f %18.6f\n", base.Entries[i].Key, base.Entries[i].Val, av)
	}
	fmt.Printf("\nrows to master: baseline %d, FPISA %d\n", bCost.RowsToMaster, sCost.RowsToMaster)
	b, s := bCost.BaselineSeconds(*workers), sCost.SwitchSeconds(*workers)
	fmt.Printf("modeled time:   baseline %.2fs, FPISA %.2fs (%.2fx)\n", b, s, b/s)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// probeAttempts bounds retries for the observer exchanges: the probe
// datagram is as droppable as any other.
const probeAttempts = 5

// observerExchange sends one observer-framed request and hands each reply
// to decode until decode reports it handled (done), retrying on timeout
// or stray datagrams. decode receives the zero-based send attempt the
// reply arrived under (attempt > 0 means the request was retransmitted,
// so the switch may have applied an earlier copy); its error on a handled
// reply is the final result — a definitive refusal is not retried away.
func observerExchange(addr string, req []byte, timeout time.Duration, decode func(pkt []byte, attempt int) (done bool, err error)) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return err
	}
	defer conn.Close()

	frame := append([]byte{transport.ObserverID}, req...)
	buf := make([]byte, 256)
	for attempt := 0; attempt < probeAttempts; attempt++ {
		if _, err := conn.Write(frame); err != nil {
			return err
		}
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		if done, derr := decode(buf[:n], attempt); done {
			return derr
		}
	}
	return fmt.Errorf("no usable reply from %s after %d attempts", addr, probeAttempts)
}

// queryJobStats probes a running fpisa-switch for one job's counters. A
// switch that reports the job as unknown is an error (non-zero exit), not
// a silent empty result.
func queryJobStats(w io.Writer, addr string, job int, timeout time.Duration) error {
	if job < 0 || job >= aggservice.MaxJobs {
		return fmt.Errorf("job %d outside the 16-bit job-id space", job)
	}
	var st aggservice.JobStats
	err := observerExchange(addr, aggservice.EncodeStatsReq(job), timeout, func(pkt []byte, _ int) (bool, error) {
		// The switch answers stats requests for unknown jobs with an
		// explicit lifecycle ack; surface it as the scriptable error.
		if len(pkt) >= 2 && pkt[0] == aggservice.WireVersion && pkt[1] == aggservice.MsgJobAck {
			gotJob, status, _, _, err := aggservice.DecodeJobAck(pkt)
			if err != nil || gotJob != job {
				return false, nil // stray or garbled ack: keep listening
			}
			return true, fmt.Errorf("switch %s refuses stats for job %d: %w", addr, job, status.Err())
		}
		gotJob, got, err := aggservice.DecodeStatsReply(pkt)
		if err != nil || gotJob != job {
			return false, nil
		}
		st = got
		return true, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "switch %s, job %d (%s)\n", addr, job, st.Phase)
	fmt.Fprintf(w, "%-22s %d\n", "scheduler weight", st.Weight)
	fmt.Fprintf(w, "%-22s %s\n", "numeric profile", st.Profile)
	fmt.Fprintf(w, "%-22s %v\n", "workload class", st.Class)
	fmt.Fprintf(w, "%-22s %d\n", "values aggregated", st.Adds)
	fmt.Fprintf(w, "%-22s %d\n", "chunks completed", st.Completions)
	fmt.Fprintf(w, "%-22s %d\n", "retransmits observed", st.Retransmits)
	fmt.Fprintf(w, "%-22s %d\n", "quota drops", st.QuotaDrops)
	fmt.Fprintf(w, "%-22s %d\n", "scheduler defers", st.SchedDefers)
	fmt.Fprintf(w, "%-22s %d\n", "slots outstanding", st.Outstanding)
	fmt.Fprintf(w, "%-22s %d\n", "result-cache hits", st.CacheHits)
	fmt.Fprintf(w, "%-22s %d\n", "result-cache bytes", st.CacheBytes)
	fmt.Fprintf(w, "%-22s %d\n", "coalesced results", st.Coalesced)
	return nil
}

// lifecycleExchange drives one admit or evict round trip against a running
// switch and returns the acknowledged status plus the echoed incarnation
// epoch, scheduler weight and numeric profile. Error statuses (unknown
// job, no capacity, lifecycle disabled, …) become the returned error. The
// operation is read from the request frame itself, so the diagnostics can
// never disagree with what was sent.
func lifecycleExchange(addr string, req []byte, job int, timeout time.Duration) (status aggservice.AckStatus, epoch uint8, weight int, prof core.NumericProfile, class aggservice.AdmitClass, err error) {
	msgType := req[1]
	verb := "admit"
	if msgType == aggservice.MsgJobEvict {
		verb = "evict"
	}
	err = observerExchange(addr, req, timeout, func(pkt []byte, attempt int) (bool, error) {
		gotJob, got, gotEpoch, gotWeight, gotProf, gotClass, derr := aggservice.DecodeJobAckClass(pkt)
		if derr != nil || gotJob != job {
			return false, nil
		}
		status, epoch, weight, prof, class = got, gotEpoch, gotWeight, gotProf, gotClass
		serr := got.Err()
		if serr == nil {
			return true, nil
		}
		// Admit/evict are retransmitted when an ack is lost, so a retry's
		// reply may find the switch already in the requested state: that
		// is success, not a refusal — a script gating on the exit code
		// must not see a completed operation as failed.
		if attempt > 0 {
			if msgType == aggservice.MsgJobAdmit && errors.Is(serr, aggservice.ErrAlreadyAdmitted) {
				status = aggservice.AckAdmitted
				return true, nil
			}
			if msgType == aggservice.MsgJobEvict && errors.Is(serr, aggservice.ErrNotAdmitted) {
				status = aggservice.AckEvicting
				return true, nil
			}
		}
		return true, fmt.Errorf("switch %s refuses to %s job %d: %w", addr, verb, job, serr)
	})
	return status, epoch, weight, prof, class, err
}

// admitRequest admits a job with a fair-scheduler weight and a numeric
// profile, and reports the weight, profile and incarnation epoch the
// switch actually applied (echoed in the ack). A requested weight of 0
// that the switch clamps to its floor is an error, and so is an echoed
// profile that differs from the one requested — the operator asked for
// something the switch did not grant, and a script must see that rather
// than a silently re-negotiated tenant.
func admitRequest(w io.Writer, addr string, job, weight int, profile, class string, timeout time.Duration) error {
	if job < 0 || job >= aggservice.MaxJobs {
		return fmt.Errorf("job %d outside the 16-bit job-id space", job)
	}
	if weight < 0 || weight > aggservice.MaxWeight {
		return fmt.Errorf("weight %d outside the 16-bit weight space", weight)
	}
	prof := core.DefaultProfile
	if profile != "" {
		var err error
		if prof, err = core.ParseProfile(profile); err != nil {
			return err
		}
	}
	ac, err := aggservice.ParseClass(class)
	if err != nil {
		return err
	}
	req := aggservice.EncodeJobAdmitClass(job, weight, prof, ac)
	status, epoch, gotWeight, gotProf, gotClass, err := lifecycleExchange(addr, req, job, timeout)
	if err != nil {
		return err
	}
	// The echoed incarnation epoch, weight, profile and class are
	// operational output: workers of a re-admitted job id must stamp the
	// epoch into their ADDs (Worker.Epoch) and speak the echoed profile's
	// wire format (Worker.Profile), the weight is the share the scheduler
	// will actually enforce, and the class names the data path the switch
	// provisioned.
	fmt.Fprintf(w, "switch %s: job %d %s (weight %d, profile %s, class %v, epoch %d)\n",
		addr, job, status, gotWeight, gotProf, gotClass, epoch)
	if weight == 0 && gotWeight != 0 {
		return fmt.Errorf("switch %s clamped the requested weight 0 to %d for job %d", addr, gotWeight, job)
	}
	if gotProf != prof {
		return fmt.Errorf("switch %s applied profile %s for job %d, not the requested %s", addr, gotProf, job, prof)
	}
	if gotClass != ac {
		return fmt.Errorf("switch %s applied class %v for job %d, not the requested %v", addr, gotClass, job, ac)
	}
	return nil
}

// evictRequest drives one evict round trip and reports the transition.
func evictRequest(w io.Writer, addr string, job int, timeout time.Duration) error {
	if job < 0 || job >= aggservice.MaxJobs {
		return fmt.Errorf("job %d outside the 16-bit job-id space", job)
	}
	status, epoch, _, _, _, err := lifecycleExchange(addr, aggservice.EncodeJobEvict(job), job, timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "switch %s: job %d %s (epoch %d)\n", addr, job, status, epoch)
	return nil
}

// drainRequest harvests one kind of analytics state from a running switch
// (read-and-reset on the switch; the library layer retries by nonce, so a
// lost reply never costs the interval) and prints the entries.
func drainRequest(w io.Writer, addr string, job int, kindName string, resetPrune bool, timeout time.Duration) error {
	if job < 0 || job >= aggservice.MaxJobs {
		return fmt.Errorf("job %d outside the 16-bit job-id space", job)
	}
	var kind aggservice.DrainKind
	switch kindName {
	case "groups":
		kind = aggservice.DrainGroups
	case "hh":
		kind = aggservice.DrainHeavyHitters
	case "hist":
		kind = aggservice.DrainHistogram
	default:
		return fmt.Errorf("-kind %q: want groups, hh or hist", kindName)
	}
	var flags uint8
	if resetPrune {
		flags |= aggservice.DrainFlagResetPrune
	}
	entries, err := aggservice.ObserverDrain(addr, job, kind, flags, timeout)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "switch %s: job %d drained %d %s entries\n", addr, job, len(entries), kindName)
	for _, e := range entries {
		switch kind {
		case aggservice.DrainHistogram:
			fmt.Fprintf(w, "  2^%-3d %g\n", e.Key, e.Val)
		case aggservice.DrainHeavyHitters:
			fmt.Fprintf(w, "  0x%08X %g\n", e.Key, e.Val)
		default:
			fmt.Fprintf(w, "  %-10d %g\n", e.Key, e.Val)
		}
	}
	return nil
}
