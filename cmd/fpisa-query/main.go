// Command fpisa-query runs one of the five evaluated database queries
// (paper Table 2) against generated data, with both execution plans, and
// prints the results side by side:
//
//	fpisa-query -query "Top-N" -workers 2 -scale 1
package main

import (
	"flag"
	"fmt"
	"log"

	"fpisa/internal/query"
)

func main() {
	name := flag.String("query", "Top-N", `query name (see "fpisa-bench -exp table2")`)
	workers := flag.Int("workers", 2, "worker partitions")
	scale := flag.Int("scale", 1, "dataset scale multiplier")
	rows := flag.Int("rows", 10, "result rows to print")
	flag.Parse()

	q, err := query.QueryByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	sc := query.DefaultScale()
	sc.UserVisits *= *scale
	sc.Rankings *= *scale
	sc.LineItems *= *scale
	sc.Orders *= *scale
	sc.Customers *= *scale

	e := query.NewEngine(query.Generate(sc, *workers, 7))
	base, bCost := e.RunBaseline(q)
	accel, sCost, err := e.RunSwitch(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s — %s via %s\n\n", q.Desc.Name, q.Desc.FPOp, q.Desc.Method)
	fmt.Printf("%-12s %18s %18s\n", "key", "baseline", "FPISA")
	n := min(*rows, len(base.Entries))
	for i := 0; i < n; i++ {
		var av float64
		if i < len(accel.Entries) {
			av = accel.Entries[i].Val
		}
		fmt.Printf("%-12d %18.6f %18.6f\n", base.Entries[i].Key, base.Entries[i].Val, av)
	}
	fmt.Printf("\nrows to master: baseline %d, FPISA %d\n", bCost.RowsToMaster, sCost.RowsToMaster)
	b, s := bCost.BaselineSeconds(*workers), sCost.SwitchSeconds(*workers)
	fmt.Printf("modeled time:   baseline %.2fs, FPISA %.2fs (%.2fx)\n", b, s, b/s)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
