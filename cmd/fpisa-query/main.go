// Command fpisa-query runs one of the five evaluated database queries
// (paper Table 2) against generated data, with both execution plans, and
// prints the results side by side:
//
//	fpisa-query -query "Top-N" -workers 2 -scale 1
//
// With -switch it instead queries a running fpisa-switch daemon for one
// tenant job's live stats, using the out-of-band observer frame (so the
// probe never disturbs a worker's learned return path):
//
//	fpisa-query -switch 127.0.0.1:9099 -job 1
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/transport"

	"fpisa/internal/query"
)

func main() {
	name := flag.String("query", "Top-N", `query name (see "fpisa-bench -exp table2")`)
	workers := flag.Int("workers", 2, "worker partitions")
	scale := flag.Int("scale", 1, "dataset scale multiplier")
	rows := flag.Int("rows", 10, "result rows to print")
	swAddr := flag.String("switch", "", "query a running fpisa-switch for per-job stats instead")
	job := flag.Int("job", 0, "job id to query (with -switch)")
	timeout := flag.Duration("timeout", time.Second, "per-probe reply timeout (with -switch)")
	flag.Parse()

	if *swAddr != "" {
		if err := queryJobStats(*swAddr, *job, *timeout); err != nil {
			log.Fatal(err)
		}
		return
	}

	q, err := query.QueryByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	sc := query.DefaultScale()
	sc.UserVisits *= *scale
	sc.Rankings *= *scale
	sc.LineItems *= *scale
	sc.Orders *= *scale
	sc.Customers *= *scale

	e := query.NewEngine(query.Generate(sc, *workers, 7))
	base, bCost := e.RunBaseline(q)
	accel, sCost, err := e.RunSwitch(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s — %s via %s\n\n", q.Desc.Name, q.Desc.FPOp, q.Desc.Method)
	fmt.Printf("%-12s %18s %18s\n", "key", "baseline", "FPISA")
	n := min(*rows, len(base.Entries))
	for i := 0; i < n; i++ {
		var av float64
		if i < len(accel.Entries) {
			av = accel.Entries[i].Val
		}
		fmt.Printf("%-12d %18.6f %18.6f\n", base.Entries[i].Key, base.Entries[i].Val, av)
	}
	fmt.Printf("\nrows to master: baseline %d, FPISA %d\n", bCost.RowsToMaster, sCost.RowsToMaster)
	b, s := bCost.BaselineSeconds(*workers), sCost.SwitchSeconds(*workers)
	fmt.Printf("modeled time:   baseline %.2fs, FPISA %.2fs (%.2fx)\n", b, s, b/s)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// queryJobStats probes a running fpisa-switch for one job's counters over
// UDP, retrying a few times since the probe datagram is as droppable as
// any other.
func queryJobStats(addr string, job int, timeout time.Duration) error {
	if job < 0 || job >= aggservice.MaxJobs {
		return fmt.Errorf("job %d outside the 16-bit job-id space", job)
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return err
	}
	defer conn.Close()

	req := append([]byte{transport.ObserverID}, aggservice.EncodeStatsReq(job)...)
	buf := make([]byte, 256)
	for attempt := 0; attempt < 5; attempt++ {
		if _, err := conn.Write(req); err != nil {
			return err
		}
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		gotJob, st, err := aggservice.DecodeStatsReply(buf[:n])
		if err != nil || gotJob != job {
			continue
		}
		fmt.Printf("switch %s, job %d\n", addr, job)
		fmt.Printf("%-22s %d\n", "values aggregated", st.Adds)
		fmt.Printf("%-22s %d\n", "chunks completed", st.Completions)
		fmt.Printf("%-22s %d\n", "retransmits observed", st.Retransmits)
		fmt.Printf("%-22s %d\n", "quota drops", st.QuotaDrops)
		fmt.Printf("%-22s %d\n", "slots outstanding", st.Outstanding)
		return nil
	}
	return fmt.Errorf("no stats reply from %s for job %d (unknown job ids are dropped, not answered)", addr, job)
}
