package main

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/pisa"
	"fpisa/internal/transport"
)

// startSwitch serves a dynamic two-range switch on a loopback UDP socket,
// the way fpisa-switch's main loop does, and returns its address.
func startSwitch(t *testing.T, cfg aggservice.Config) (*aggservice.Switch, string) {
	t.Helper()
	sw, err := aggservice.NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() { _ = transport.ServeConn(conn, cfg.Ports(), sw.HandleBatch) }()
	return sw, conn.LocalAddr().String()
}

func dynConfig() aggservice.Config {
	return aggservice.Config{
		Workers: 2, Pool: 2, Modules: 1, Shards: 2, Jobs: 1, Capacity: 2,
		Dynamic: true, Mode: core.ModeApprox, Arch: pisa.BaseArch(),
	}
}

// TestAdmitEvictRoundTrip drives the full operator workflow over real UDP:
// admit a job, see its stats become queryable, evict it, and watch the
// switch refuse further operations — each with the right process-level
// outcome (nil vs error) for script gating.
func TestAdmitEvictRoundTrip(t *testing.T) {
	sw, addr := startSwitch(t, dynConfig())
	const probeTimeout = 500 * time.Millisecond

	var out strings.Builder
	if err := admitRequest(&out, addr, 1, 1, "", "", probeTimeout); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if !strings.Contains(out.String(), "job 1 admitted") {
		t.Fatalf("admit output: %q", out.String())
	}
	if ph := sw.JobPhaseOf(1); ph != aggservice.PhaseAdmitted {
		t.Fatalf("phase after wire admit: %v", ph)
	}

	// Stats for the fresh job answer with its phase.
	out.Reset()
	if err := queryJobStats(&out, addr, 1, probeTimeout); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out.String(), "job 1 (admitted)") {
		t.Fatalf("stats output: %q", out.String())
	}

	// Double admit is refused with the sentinel a script can gate on.
	if err := admitRequest(&out, addr, 1, 1, "", "", probeTimeout); !errors.Is(err, aggservice.ErrAlreadyAdmitted) {
		t.Fatalf("double admit: %v", err)
	}

	out.Reset()
	if err := evictRequest(&out, addr, 1, probeTimeout); err != nil {
		t.Fatalf("evict: %v", err)
	}
	if !strings.Contains(out.String(), "job 1 evicting") {
		t.Fatalf("evict output: %q", out.String())
	}
	if err := evictRequest(&out, addr, 1, probeTimeout); !errors.Is(err, aggservice.ErrNotAdmitted) {
		t.Fatalf("double evict: %v", err)
	}
	if err := admitRequest(&out, addr, 9, 1, "", "", probeTimeout); !errors.Is(err, aggservice.ErrUnknownJob) {
		t.Fatalf("admit unknown: %v", err)
	}
}

// TestAdmitWithWeight drives a weighted admission over real UDP: the ack
// must echo the applied weight and epoch, the job's stats must report the
// weight, and a requested weight of 0 — which the switch clamps to 1 —
// must surface as a non-zero-exit error rather than a silent default.
func TestAdmitWithWeight(t *testing.T) {
	sw, addr := startSwitch(t, dynConfig())
	const probeTimeout = 500 * time.Millisecond

	var out strings.Builder
	if err := admitRequest(&out, addr, 1, 4, "", "", probeTimeout); err != nil {
		t.Fatalf("weighted admit: %v", err)
	}
	if !strings.Contains(out.String(), "job 1 admitted (weight 4, profile f32/trunc, class training, epoch 0)") {
		t.Fatalf("weighted admit output: %q", out.String())
	}
	if got := sw.JobWeight(1); got != 4 {
		t.Fatalf("switch applied weight %d, want 4", got)
	}
	out.Reset()
	if err := queryJobStats(&out, addr, 1, probeTimeout); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out.String(), "scheduler weight") || !strings.Contains(out.String(), " 4") {
		t.Fatalf("stats output lacks the weight: %q", out.String())
	}

	// The clamp case: weight 0 is admitted at the floor 1, and the command
	// reports the clamp as an error a script can gate on.
	if err := evictRequest(&out, addr, 1, probeTimeout); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := admitRequest(&out, addr, 1, 0, "", "", probeTimeout)
	if err == nil || !strings.Contains(err.Error(), "clamped") {
		t.Fatalf("weight-0 clamp not surfaced: err=%v", err)
	}
	if !strings.Contains(out.String(), "(weight 1, profile f32/trunc, class training, epoch 1)") {
		t.Fatalf("clamp output: %q", out.String())
	}
	if got := sw.JobWeight(1); got != 1 {
		t.Fatalf("clamped weight = %d, want 1", got)
	}

	// Out-of-space weights are refused locally, before any datagram.
	if err := admitRequest(&out, addr, 2, aggservice.MaxWeight+1, "", "", time.Millisecond); err == nil {
		t.Fatal("oversized weight accepted")
	}
	if err := admitRequest(&out, addr, 2, -1, "", "", time.Millisecond); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// TestAdmitWithProfile drives a profile-carrying admission over real UDP:
// the ack must echo the applied profile, the stats probe must report it,
// and a profile the switch refuses must surface the sentinel. A malformed
// -profile string fails locally before any datagram.
func TestAdmitWithProfile(t *testing.T) {
	sw, addr := startSwitch(t, dynConfig())
	const probeTimeout = 500 * time.Millisecond

	var out strings.Builder
	if err := admitRequest(&out, addr, 1, 2, "bf16/trunc", "", probeTimeout); err != nil {
		t.Fatalf("profiled admit: %v", err)
	}
	if !strings.Contains(out.String(), "job 1 admitted (weight 2, profile bf16/trunc, class training, epoch 0)") {
		t.Fatalf("profiled admit output: %q", out.String())
	}
	if got := sw.JobProfile(1); got.String() != "bf16/trunc" {
		t.Fatalf("switch applied profile %s", got)
	}
	out.Reset()
	if err := queryJobStats(&out, addr, 1, probeTimeout); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out.String(), "numeric profile") || !strings.Contains(out.String(), "bf16/trunc") {
		t.Fatalf("stats output lacks the profile: %q", out.String())
	}

	// An invalid profile — RNE with no guard bit to round on — is caught
	// by ParseProfile on the client, before any datagram leaves (the
	// switch would refuse it with AckErrBadProfile anyway; the admit
	// fuzzer and aggservice's rejection tests cover that wire path).
	out.Reset()
	err := admitRequest(&out, addr, 0, 1, "f16/rne", "", time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "guard") {
		t.Fatalf("invalid profile not refused locally: %v", err)
	}
	if err := admitRequest(&out, addr, 0, 1, "f8/chop", "", time.Millisecond); err == nil {
		t.Fatal("garbage profile accepted")
	}
}

// TestAdmitWithClassAndDrain drives a class-carrying admission over real
// UDP: the ack must echo the provisioned workload class, the stats probe
// must report it, and the operator drain must harvest the analytics
// registers the class provisioned. A malformed -class string fails
// locally before any datagram, as does an unknown -kind.
func TestAdmitWithClassAndDrain(t *testing.T) {
	cfg := dynConfig()
	sw, addr := startSwitch(t, cfg)
	const probeTimeout = 500 * time.Millisecond

	var out strings.Builder
	if err := admitRequest(&out, addr, 1, 1, "", "query:4:64", probeTimeout); err != nil {
		t.Fatalf("class admit: %v", err)
	}
	if !strings.Contains(out.String(), "class query(topn=4,groups=64)") {
		t.Fatalf("class admit output: %q", out.String())
	}
	want := aggservice.AdmitClass{Class: aggservice.ClassQuery, TopN: 4, Groups: 64}
	if got := sw.JobClass(1); got != want {
		t.Fatalf("switch applied class %v, want %v", got, want)
	}
	out.Reset()
	if err := queryJobStats(&out, addr, 1, probeTimeout); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out.String(), "workload class") || !strings.Contains(out.String(), "query(topn=4,groups=64)") {
		t.Fatalf("stats output lacks the class: %q", out.String())
	}

	// Fold a few grouped tuples in-process, then harvest them with the
	// operator drain over the wire: read-and-reset, so a second drain
	// comes back empty.
	batch := aggservice.EncodeTuples(1, 0, sw.JobEpoch(1), aggservice.OpQueryAgg,
		[]uint32{3, 3, 7}, []float32{10, 5, 2})
	if replies := sw.Handle(cfg.Port(1, 0), batch); len(replies) == 0 {
		t.Fatal("tuple batch produced no ack")
	}
	out.Reset()
	if err := drainRequest(&out, addr, 1, "groups", false, probeTimeout); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !strings.Contains(out.String(), "drained 2 groups entries") ||
		!strings.Contains(out.String(), "15") || !strings.Contains(out.String(), "2") {
		t.Fatalf("drain output: %q", out.String())
	}
	out.Reset()
	if err := drainRequest(&out, addr, 1, "groups", false, probeTimeout); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if !strings.Contains(out.String(), "drained 0 groups entries") {
		t.Fatalf("drain is not read-and-reset: %q", out.String())
	}

	// Local refusals, before any datagram leaves.
	if err := admitRequest(&out, addr, 2, 1, "", "query:banana", time.Millisecond); err == nil {
		t.Fatal("malformed class accepted")
	}
	if err := drainRequest(&out, addr, 1, "bogus", false, time.Millisecond); err == nil || !strings.Contains(err.Error(), "want groups") {
		t.Fatalf("unknown drain kind not refused locally: %v", err)
	}
}

// TestQueryUnknownJobErrors is the exit-code satellite: a stats probe for
// a job the switch does not know must come back as an error, not success
// with empty output.
func TestQueryUnknownJobErrors(t *testing.T) {
	_, addr := startSwitch(t, dynConfig())
	var out strings.Builder
	err := queryJobStats(&out, addr, 7, 500*time.Millisecond)
	if !errors.Is(err, aggservice.ErrUnknownJob) {
		t.Fatalf("unknown-job stats: %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("unknown-job stats still printed: %q", out.String())
	}
	if err := queryJobStats(&out, addr, -1, time.Millisecond); err == nil {
		t.Fatal("negative job accepted")
	}
	if err := queryJobStats(&out, addr, aggservice.MaxJobs, time.Millisecond); err == nil {
		t.Fatal("out-of-space job accepted")
	}
}

// TestLifecycleDisabledOverWire: a static daemon refuses wire admits with
// the dedicated sentinel.
func TestLifecycleDisabledOverWire(t *testing.T) {
	cfg := dynConfig()
	cfg.Dynamic = false
	_, addr := startSwitch(t, cfg)
	var out strings.Builder
	err := admitRequest(&out, addr, 1, 1, "", "", 500*time.Millisecond)
	if !errors.Is(err, aggservice.ErrLifecycleDisabled) {
		t.Fatalf("disabled admit: %v", err)
	}
}

// TestObserverExchangeTimesOut: with nothing listening, the probe gives up
// with an error instead of hanging or succeeding.
func TestObserverExchangeTimesOut(t *testing.T) {
	// A socket that never answers.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var out strings.Builder
	if err := queryJobStats(&out, conn.LocalAddr().String(), 0, 20*time.Millisecond); err == nil {
		t.Fatal("silent switch produced a stats success")
	}
}
