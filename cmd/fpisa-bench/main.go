// Command fpisa-bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	fpisa-bench -exp all          # everything
//	fpisa-bench -exp table3       # one artifact
//	fpisa-bench -exp fig9 -quick  # reduced-epoch convergence study
//
// Output is plain text in the layout of the corresponding paper artifact,
// with the paper's reference values cited inline where applicable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fpisa/internal/banzai"
	"fpisa/internal/core"
	"fpisa/internal/gradients"
	"fpisa/internal/payload"
	"fpisa/internal/perfmodel"
	"fpisa/internal/pisa"
	"fpisa/internal/query"
	"fpisa/internal/stats"
	"fpisa/internal/train"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, table2, table3, fig6, fig7, fig8, fig9, fig10, fig11, fig13")
	quick := flag.Bool("quick", false, "reduce workload sizes (fig8/fig9)")
	scale := flag.Int("scale", 1, "dataset scale multiplier for fig13")
	flag.Parse()

	runners := map[string]func(bool, int){
		"table1": func(bool, int) { table1() },
		"table2": func(bool, int) { table2() },
		"table3": func(bool, int) { table3() },
		"fig6":   func(bool, int) { fig6() },
		"fig7":   func(q bool, _ int) { fig7(q) },
		"fig8":   func(q bool, _ int) { fig8(q) },
		"fig9":   func(q bool, _ int) { fig9(q) },
		"fig10":  func(bool, int) { fig10() },
		"fig11":  func(bool, int) { fig11() },
		"fig13":  func(_ bool, s int) { fig13(s) },
	}
	order := []string{"table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig13"}

	if *exp == "all" {
		for _, name := range order {
			runners[name](*quick, *scale)
		}
		return
	}
	r, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from %s\n", *exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	r(*quick, *scale)
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

func table1() {
	header("Table 1: ALU / stateful-atom synthesis (FreePDK15-calibrated model)")
	fmt.Print(banzai.FormatTable1(banzai.Table1()))
	def := banzai.DefaultALU().Synthesize(banzai.FreePDK15)
	fp := banzai.FPISAALU().Synthesize(banzai.FreePDK15)
	raw := banzai.RAW().Synthesize(banzai.FreePDK15)
	rsaw := banzai.RSAW().Synthesize(banzai.FreePDK15)
	fpu := banzai.ALUPlusFPU().Synthesize(banzai.FreePDK15)
	fmt.Printf("\nFPISA ALU overhead: %+.1f%% power, %+.1f%% area   (paper: +13.0%%, +22.4%%)\n",
		(fp.DynamicUW/def.DynamicUW-1)*100, (fp.AreaUM2/def.AreaUM2-1)*100)
	fmt.Printf("RSAW overhead:      %+.1f%% power, %+.1f%% area, %+.1f%% delay (paper: +13.6%%, +35.0%%, +13.5%%)\n",
		(rsaw.DynamicUW/raw.DynamicUW-1)*100, (rsaw.AreaUM2/raw.AreaUM2-1)*100, (rsaw.MinDelayPs/raw.MinDelayPs-1)*100)
	fmt.Printf("Hard FPU vs ALU:    %.1fx power, %.1fx area          (paper: >5x both)\n",
		fpu.DynamicUW/def.DynamicUW, fpu.AreaUM2/def.AreaUM2)
}

func table2() {
	header("Table 2: evaluated queries")
	fmt.Printf("%-36s %-24s %s\n", "Query", "Acceleration method", "FP operation")
	for _, d := range query.Table2() {
		fmt.Printf("%-36s %-24s %s\n", d.Name, d.Method, d.FPOp)
	}
}

func table3() {
	header("Table 3: FPISA-A resource utilization on the base architecture")
	pa, err := core.NewPipelineAggregator(core.DefaultFP32(core.ModeApprox), 1, 256, pisa.BaseArch())
	if err != nil {
		fmt.Println("compile error:", err)
		return
	}
	fmt.Print(pa.Utilization().String())
	fmt.Println("(paper: 9/12 stages; VLIW max 96.88% — the variable-shift emulation bottleneck)")

	fmt.Println("\nAblation: with the §4.2 VariableShift/RSAW extensions")
	ext, err := core.NewPipelineAggregator(core.DefaultFP32(core.ModeApprox), core.MaxModules(pisa.ExtendedArch()), 256, pisa.ExtendedArch())
	if err != nil {
		fmt.Println("compile error:", err)
		return
	}
	fmt.Printf("modules per pipeline: base=%d extended=%d\n",
		core.MaxModules(pisa.BaseArch()), core.MaxModules(pisa.ExtendedArch()))
	fmt.Print(ext.Utilization().String())
}

func fig6() {
	header("Fig. 6: endianness conversion rate vs 100 Gbps requirement")
	const bufBytes = 1 << 20
	buf := make([]byte, bufBytes)
	measure := func(swap func([]byte), elemBytes int) float64 {
		// Warm up, then time.
		swap(buf)
		n := 0
		start := time.Now()
		for time.Since(start) < 200*time.Millisecond {
			swap(buf)
			n++
		}
		elapsed := time.Since(start).Seconds()
		return float64(n) * float64(bufBytes/elemBytes) / elapsed
	}
	fmt.Printf("%-6s %22s %22s %8s\n", "Format", "single-core rate (/s)", "needed for 100G (/s)", "cores")
	for _, c := range []struct {
		name  string
		bytes int
		swap  func([]byte)
	}{
		{"FP16", 2, payload.SwapBytes16},
		{"FP32", 4, payload.SwapBytes32},
		{"FP64", 8, payload.SwapBytes64},
	} {
		rate := measure(c.swap, c.bytes)
		need := payload.DesiredRatePerSec(100, c.bytes)
		fmt.Printf("%-6s %22.3g %22.3g %8d\n", c.name, rate, need,
			payload.CoresForLineRate(100, c.bytes, rate))
	}
	fmt.Println("(paper: single-core DPDK rates fall far short of line rate; FP16 needs ≥11 cores)")
}

func fig7(quick bool) {
	header("Fig. 7: element-wise max/min ratio distribution (8 workers)")
	n := 30000
	if quick {
		n = 5000
	}
	for _, p := range gradients.Fig7Profiles() {
		g := gradients.NewGenerator(p, 42)
		ws := g.WorkerGradients(8, n)
		h := gradients.RatioHistogram(ws)
		fmt.Printf("\n%s (%s): P(ratio < 2^7) = %.3f   (paper: ~0.83)\n", p.Name, p.Dataset, h.FractionBelow(7))
		fmt.Print(h.String())
	}
}

func fig8(quick bool) {
	header("Fig. 8: FPISA-A aggregation error distribution (VGG19)")
	n := 30000
	if quick {
		n = 5000
	}
	for _, epoch := range []int{1, 20, 40} {
		g := gradients.NewGenerator(gradients.VGG19, 42)
		g.SetEpoch(epoch)
		ws := g.WorkerGradients(8, n)
		rep, err := gradients.ErrorDistribution(core.DefaultFP32(core.ModeApprox), ws)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("\nEpoch %d: median |err| = %.3g, p95 = %.3g, overwrite share = %.4f%% (paper <0.9%%), left-shift share = %.4f%% (paper <0.1%%)\n",
			epoch, rep.MedianError, rep.P95Error, rep.OverwriteShare*100, rep.LeftShiftShare*100)
		fmt.Print(rep.Hist.String())
	}
}

func fig9(quick bool) {
	header("Fig. 9: convergence with default vs FPISA-A aggregation")
	epochs := 40
	archCount := 4
	if quick {
		epochs, archCount = 10, 2
	}
	trainSet, testSet := train.SyntheticDataset(1024, 512, 12, 4, 3)
	cfg := train.DefaultSGD()
	cfg.Epochs = epochs

	reducers := []train.Reducer{
		train.ExactReducer{},
		train.FPISAReducer{Cfg: core.DefaultFP32(core.ModeApprox)},
		train.FP16Reducer{Inner: train.ExactReducer{}},
		train.FP16Reducer{Inner: train.FPISAReducer{Cfg: core.DefaultFP32(core.ModeApprox)}},
	}
	for _, arch := range train.Fig9Architectures()[:archCount] {
		fmt.Printf("\nModel %s (%d epochs, 8 workers, batch 16):\n", arch.Name, epochs)
		var series []stats.Series
		for _, red := range reducers {
			res, err := train.Run(arch, trainSet, testSet, cfg, red)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			series = append(series, res.Accuracy)
			fmt.Printf("  %-16s final accuracy %.4f\n", res.Reducer, res.Final)
		}
		fmt.Println(stats.FormatTable("epoch", series))
	}
	fmt.Println("(paper: FPISA-A curves track default addition within 0.1% final accuracy)")
}

func fig10() {
	header("Fig. 10 (left): goodput vs cores, 16 KB messages")
	r := perfmodel.DefaultRates()
	fmt.Print(stats.FormatTable("cores", perfmodel.Fig10Left(r, 10)))
	fmt.Printf("cores to line rate: SwitchML/CPU=%d FPISA-A/CPU=%d FPISA-A/CPU(Opt)=%d (paper: 4 / 3 / 1)\n",
		r.CoresToLineRate(perfmodel.SwitchMLCPU, 16<<10),
		r.CoresToLineRate(perfmodel.FPISACPU, 16<<10),
		r.CoresToLineRate(perfmodel.FPISACPUOpt, 16<<10))

	header("Fig. 10 (right): goodput vs message size, 4 cores")
	fmt.Print(stats.FormatTable("msg KB", perfmodel.Fig10Right(r, perfmodel.Fig10Sizes())))
}

func fig11() {
	header("Fig. 11: end-to-end training speedup, FPISA-A over SwitchML (DPDK)")
	fmt.Print(perfmodel.FormatFig11())
	fmt.Println("(paper: 85.9/56.3/35.4/20.3/0.9/0.6/0.8% at 2 cores; 31.6/16.7/9.9/0.2/0.3/3.6/0.6% at 8)")
}

func fig13(scale int) {
	header("Fig. 13: distributed query execution time (modeled), baseline vs FPISA")
	sc := query.DefaultScale()
	sc.UserVisits *= scale
	sc.Rankings *= scale
	sc.LineItems *= scale
	sc.Orders *= scale
	sc.Customers *= scale
	const workers = 2
	e := query.NewEngine(query.Generate(sc, workers, 7))
	fmt.Printf("%-36s %12s %12s %9s %16s\n", "Query", "Baseline(s)", "FPISA(s)", "Speedup", "rows to master")
	for _, q := range query.Queries() {
		_, bCost := e.RunBaseline(q)
		_, sCost, err := e.RunSwitch(q)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		b := bCost.BaselineSeconds(workers)
		s := sCost.SwitchSeconds(workers)
		fmt.Printf("%-36s %12.2f %12.2f %8.2fx %7d -> %6d\n",
			q.Desc.Name, b, s, b/s, bCost.RowsToMaster, sCost.RowsToMaster)
	}
	fmt.Println("(paper: 1.9-2.7x over Spark across the five queries)")
}
