// Command fpisa-switch runs a standalone FPISA aggregation switch daemon
// over UDP. Workers frame packets with a one-byte worker ID followed by the
// aggservice wire format (single ADDs or MsgBatch frames); the daemon
// answers results to the senders' addresses (broadcasting completions to
// every registered worker).
//
// The aggregation service is sharded across parallel pipeline replicas
// (-shards) and the socket is drained by transport.ServeConn's reader
// pool, so packets for different slots aggregate concurrently.
//
//	fpisa-switch -addr 127.0.0.1:9099 -workers 4 -pool 8 -shards 4
package main

import (
	"flag"
	"log"
	"net"
	"runtime"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/pisa"
	"fpisa/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9099", "UDP listen address")
	workers := flag.Int("workers", 4, "number of workers")
	pool := flag.Int("pool", 8, "aggregation slot pool")
	modules := flag.Int("modules", 1, "vector elements per packet")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "parallel pipeline replicas (capped at 2*pool)")
	extended := flag.Bool("extended", false, "enable the §4.2 hardware extensions")
	full := flag.Bool("full", false, "full FPISA (needs -extended)")
	flag.Parse()

	arch := pisa.BaseArch()
	if *extended {
		arch = pisa.ExtendedArch()
	}
	mode := core.ModeApprox
	if *full {
		mode = core.ModeFull
	}
	if *shards > 2**pool {
		*shards = 2 * *pool
	}
	sw, err := aggservice.NewSwitch(aggservice.Config{
		Workers: *workers, Pool: *pool, Modules: *modules, Shards: *shards,
		Mode: mode, Arch: arch,
	})
	if err != nil {
		log.Fatalf("switch: %v", err)
	}

	udpAddr, err := net.ResolveUDPAddr("udp", *addr)
	if err != nil {
		log.Fatalf("resolve: %v", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer conn.Close()
	log.Printf("fpisa-switch (%v, %s, %d shards) listening on %s for %d workers",
		mode, arch.Name, sw.Shards(), conn.LocalAddr(), *workers)
	log.Printf("pipeline resource report:\n%s", sw.Utilization())

	transport.ServeConn(conn, *workers, sw.Handle)
	log.Fatal("fpisa-switch: socket closed")
}
