// Command fpisa-switch runs a standalone FPISA aggregation switch daemon
// over UDP. Workers frame packets with a one-byte worker-port ID followed
// by the aggservice wire format v2 (single ADDs or MsgBatch frames); the
// daemon answers results to the senders' addresses (broadcasting
// completions to every registered worker, or to the owning job's ports
// when several jobs share the switch).
//
// The switch is multi-tenant: -jobs admits that many training jobs, each
// owning a contiguous slot-pool partition, -workers workers (job j's
// worker i sends on port j·workers+i) and its own stats, with -quota
// capping each job's outstanding slots. Legacy v1 (job-less) clients are
// rejected and counted. Per-job stats can be queried out-of-band with
// fpisa-query -switch (the 0xFF observer frame).
//
// The aggregation service is sharded across parallel pipeline replicas
// (-shards) and the socket is drained by transport.ServeConn's reader
// pool, so packets for different slots aggregate concurrently.
//
//	fpisa-switch -addr 127.0.0.1:9099 -jobs 2 -workers 4 -pool 8 -shards 4 -quota 8
package main

import (
	"flag"
	"log"
	"net"
	"runtime"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/pisa"
	"fpisa/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9099", "UDP listen address")
	jobs := flag.Int("jobs", 1, "tenant jobs sharing the switch")
	workers := flag.Int("workers", 4, "number of workers per job")
	pool := flag.Int("pool", 8, "aggregation slot pool per job")
	quota := flag.Int("quota", 0, "max outstanding slots per job (0 = unlimited)")
	modules := flag.Int("modules", 1, "vector elements per packet")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "parallel pipeline replicas (capped at jobs*2*pool)")
	extended := flag.Bool("extended", false, "enable the §4.2 hardware extensions")
	full := flag.Bool("full", false, "full FPISA (needs -extended)")
	statsEvery := flag.Duration("statsevery", 0, "log per-job stats at this interval (0 = off)")
	flag.Parse()

	arch := pisa.BaseArch()
	if *extended {
		arch = pisa.ExtendedArch()
	}
	mode := core.ModeApprox
	if *full {
		mode = core.ModeFull
	}
	if slots := *jobs * 2 * *pool; *shards > slots {
		*shards = slots
	}
	cfg := aggservice.Config{
		Workers: *workers, Pool: *pool, Modules: *modules, Shards: *shards,
		Jobs: *jobs, MaxOutstanding: *quota,
		Mode: mode, Arch: arch,
	}
	if cfg.Ports() > transport.MaxWorkers {
		log.Fatalf("switch: %d jobs x %d workers = %d ports exceed the %d the UDP frame addresses",
			*jobs, *workers, cfg.Ports(), transport.MaxWorkers)
	}
	sw, err := aggservice.NewSwitch(cfg)
	if err != nil {
		log.Fatalf("switch: %v", err)
	}

	udpAddr, err := net.ResolveUDPAddr("udp", *addr)
	if err != nil {
		log.Fatalf("resolve: %v", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer conn.Close()
	log.Printf("fpisa-switch (%v, %s, %d shards) listening on %s for %d jobs x %d workers (quota %d)",
		mode, arch.Name, sw.Shards(), conn.LocalAddr(), sw.Jobs(), *workers, *quota)
	for j := 0; j < sw.Jobs(); j++ {
		log.Printf("  job %d: ports %d..%d, slots %d..%d", j,
			cfg.Port(j, 0), cfg.Port(j, *workers-1), j*2**pool, (j+1)*2**pool-1)
	}
	log.Printf("pipeline resource report:\n%s", sw.Utilization())

	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for range tick.C {
				for j := 0; j < sw.Jobs(); j++ {
					st, _ := sw.JobStats(j)
					log.Printf("job %d: adds=%d retrans=%d chunks=%d quotaDrops=%d outstanding=%d",
						j, st.Adds, st.Retransmits, st.Completions, st.QuotaDrops, st.Outstanding)
				}
				r := sw.Rejects()
				if r.Legacy+r.Malformed+r.BadJob+r.CrossJob > 0 {
					log.Printf("rejects: legacy=%d malformed=%d badJob=%d crossJob=%d",
						r.Legacy, r.Malformed, r.BadJob, r.CrossJob)
				}
			}
		}()
	}

	if err := transport.ServeConn(conn, cfg.Ports(), sw.Handle); err != nil {
		log.Fatalf("fpisa-switch: %v", err)
	}
	log.Fatal("fpisa-switch: socket closed")
}
