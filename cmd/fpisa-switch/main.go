// Command fpisa-switch runs a standalone FPISA aggregation switch daemon
// over UDP. Workers frame packets with a one-byte worker ID followed by the
// aggservice wire format; the daemon answers results to the senders'
// addresses (broadcasting completions to every registered worker).
//
//	fpisa-switch -addr 127.0.0.1:9099 -workers 4 -pool 8
package main

import (
	"flag"
	"log"
	"net"
	"sync"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/pisa"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9099", "UDP listen address")
	workers := flag.Int("workers", 4, "number of workers")
	pool := flag.Int("pool", 8, "aggregation slot pool")
	modules := flag.Int("modules", 1, "vector elements per packet")
	extended := flag.Bool("extended", false, "enable the §4.2 hardware extensions")
	full := flag.Bool("full", false, "full FPISA (needs -extended)")
	flag.Parse()

	arch := pisa.BaseArch()
	if *extended {
		arch = pisa.ExtendedArch()
	}
	mode := core.ModeApprox
	if *full {
		mode = core.ModeFull
	}
	sw, err := aggservice.NewSwitch(aggservice.Config{
		Workers: *workers, Pool: *pool, Modules: *modules, Mode: mode, Arch: arch,
	})
	if err != nil {
		log.Fatalf("switch: %v", err)
	}

	udpAddr, err := net.ResolveUDPAddr("udp", *addr)
	if err != nil {
		log.Fatalf("resolve: %v", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer conn.Close()
	log.Printf("fpisa-switch (%v, %s) listening on %s for %d workers",
		mode, arch.Name, conn.LocalAddr(), *workers)
	log.Printf("pipeline resource report:\n%s", sw.Utilization())

	var mu sync.Mutex
	addrs := make([]*net.UDPAddr, *workers)
	buf := make([]byte, 65536)
	for {
		n, src, err := conn.ReadFromUDP(buf)
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		if n < 1 {
			continue
		}
		worker := int(buf[0])
		if worker < 0 || worker >= *workers {
			continue
		}
		mu.Lock()
		addrs[worker] = src
		mu.Unlock()

		for _, d := range sw.Handle(worker, append([]byte(nil), buf[1:n]...)) {
			targets := []int{d.Worker}
			if d.Broadcast {
				targets = targets[:0]
				for w := 0; w < *workers; w++ {
					targets = append(targets, w)
				}
			}
			mu.Lock()
			for _, t := range targets {
				if addrs[t] != nil {
					if _, err := conn.WriteToUDP(d.Packet, addrs[t]); err != nil {
						log.Printf("write to worker %d: %v", t, err)
					}
				}
			}
			mu.Unlock()
		}
	}
}
