// Command fpisa-switch runs a standalone FPISA aggregation switch daemon
// over UDP. Workers frame packets with a one-byte worker-port ID followed
// by the aggservice wire format v2 (single ADDs or MsgBatch frames); the
// daemon answers results to the senders' addresses (broadcasting
// completions to every registered worker, or to the owning job's ports
// when several jobs share the switch).
//
// The switch is multi-tenant: -jobs admits that many jobs at start, each
// owning a slot-pool partition through the lifecycle indirection table,
// -workers workers (job j's worker i sends on port j·workers+i) and its
// own stats, with -quota capping each job's outstanding slots. Tenants
// need not be training jobs: -classes assigns comma-separated workload
// classes to the initial jobs (e.g. -jobs 3 -classes
// training,query:10:1024,telemetry:16; missing entries default to
// training), provisioning per-range pruning registers and group
// accumulators for query tenants or LPM-classified utilization,
// heavy-hitter and histogram sketches for telemetry tenants — all
// scheduled by the same deficit ledger and drained with fpisa-query
// -drain. Pipeline time is shared by a per-job deficit-round-
// robin scheduler: -weights assigns comma-separated weights to the initial
// jobs (e.g. -jobs 3 -weights 1,2,4; missing entries default to 1), and
// jobs admitted at runtime carry the weight named in fpisa-query -admit
// -weight. Precision is likewise per-tenant: -profiles assigns
// comma-separated numeric profiles to the initial jobs (e.g. -jobs 2
// -profiles f32/rne/g2,bf16/trunc; missing entries default to f32/trunc),
// and jobs admitted at runtime carry the profile named in fpisa-query
// -admit -profile. Legacy v1 (job-less) clients are rejected and counted. Per-job
// stats can be queried out-of-band with fpisa-query -switch (the 0xFF
// observer frame).
//
// With -dynamic the runtime job lifecycle control plane is enabled: an
// operator admits and evicts jobs without restarting the switch
// (fpisa-query -admit / -evict), -capacity provisions slot ranges beyond
// the initial tenant set, and -draintimeout bounds how long an evicted
// job's in-flight chunks may hold its range. Every lifecycle transition
// logs a stats line.
//
// The aggregation service is sharded across parallel pipeline replicas
// (-shards) and the socket is drained by transport.ServeConn's reader
// pool, so packets for different slots aggregate concurrently. -mmsg
// selects the kernel-batched wire backend (sendmmsg/recvmmsg, one syscall
// per datagram burst; "auto" uses it where the platform supports it,
// "off" forces the portable per-datagram loop); the resolved backend is
// echoed in the startup banner and its syscall counters — including
// failed downlink datagrams (sendErrors) — appear in the -statsevery
// "wire:" line.
//
// Switches compose into aggregation trees: -parent host:port makes this
// switch a LEAF that re-emits each completed chunk upward as an ADD to
// the parent switch (an ordinary fpisa-switch whose -workers equals the
// leaf count) and releases results to its own workers only when the
// parent's aggregate returns. -leaf/-leaves name this switch's worker
// port at the parent; admission is negotiated up the tree (the leaf's
// initial jobs are admitted at the parent over the 0xFF observer frame
// before the leaf starts serving, echoing the parent incarnation epoch
// that fences every cross-level datagram). Both levels must run the same
// -pool. See examples/tree for a full 2-level deployment.
//
//	fpisa-switch -addr 127.0.0.1:9099 -jobs 2 -workers 4 -pool 8 -shards 4 -quota 8 -dynamic -capacity 4
//	fpisa-switch -addr 127.0.0.1:9100 -workers 3 -parent 127.0.0.1:9099 -leaf 0 -leaves 4
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/pisa"
	"fpisa/internal/transport"
)

// options is the daemon's parsed command line, kept separate from main so
// the flag surface is testable without sockets.
type options struct {
	addr         string
	jobs         int
	capacity     int
	workers      int
	pool         int
	quota        int
	weights      []int
	profiles     []core.NumericProfile
	classes      []aggservice.AdmitClass
	modules      int
	shards       int
	dynamic      bool
	drainTimeout time.Duration
	extended     bool
	full         bool
	statsEvery   time.Duration
	parent       string
	leaf         int
	leaves       int
	mmsg         transport.MmsgMode
}

// parseOptions parses args (no program name) into options.
func parseOptions(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("fpisa-switch", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:9099", "UDP listen address")
	fs.IntVar(&o.jobs, "jobs", 1, "tenant jobs admitted at start")
	fs.IntVar(&o.capacity, "capacity", 0, "slot ranges provisioned for runtime admission (0 = jobs, or 2x jobs with -dynamic)")
	fs.IntVar(&o.workers, "workers", 4, "number of workers per job")
	fs.IntVar(&o.pool, "pool", 8, "aggregation slot pool per job")
	fs.IntVar(&o.quota, "quota", 0, "max outstanding slots per job (0 = unlimited)")
	weights := fs.String("weights", "", "comma-separated fair-scheduler weights for the initial jobs, e.g. 1,2,4 (missing = 1)")
	profiles := fs.String("profiles", "", "comma-separated numeric profiles for the initial jobs, e.g. f32/rne/g2,bf16/trunc (missing = f32/trunc)")
	classes := fs.String("classes", "", "comma-separated workload classes for the initial jobs, e.g. training,query:10:1024,telemetry:16 (missing = training)")
	fs.IntVar(&o.modules, "modules", 1, "vector elements per packet")
	fs.IntVar(&o.shards, "shards", runtime.GOMAXPROCS(0), "parallel pipeline replicas (capped at capacity*2*pool)")
	fs.BoolVar(&o.dynamic, "dynamic", false, "enable the runtime admit/evict control plane (fpisa-query -admit/-evict)")
	fs.DurationVar(&o.drainTimeout, "draintimeout", 0, "bound on an evicted job's drain (0 = default)")
	fs.BoolVar(&o.extended, "extended", false, "enable the §4.2 hardware extensions")
	fs.BoolVar(&o.full, "full", false, "full FPISA (needs -extended)")
	fs.DurationVar(&o.statsEvery, "statsevery", 0, "log per-job stats at this interval (0 = off)")
	fs.StringVar(&o.parent, "parent", "", "parent switch address: run as a LEAF forwarding completed chunks upward")
	fs.IntVar(&o.leaf, "leaf", 0, "this leaf's index at the parent (its worker port, with -parent)")
	fs.IntVar(&o.leaves, "leaves", 1, "total leaves feeding the parent (the parent's -workers, with -parent)")
	mmsg := fs.String("mmsg", "auto", "kernel-batched UDP I/O: auto (sendmmsg/recvmmsg where supported), on, off (per-datagram loop)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	mode, err := transport.ParseMmsgMode(*mmsg)
	if err != nil {
		return nil, fmt.Errorf("-mmsg %q: want auto, on or off", *mmsg)
	}
	o.mmsg = mode
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.parent != "" && (o.leaves < 1 || o.leaf < 0 || o.leaf >= o.leaves) {
		return nil, fmt.Errorf("-leaf %d -leaves %d: the leaf index must name one of the parent's worker ports", o.leaf, o.leaves)
	}
	if *weights != "" {
		for _, field := range strings.Split(*weights, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil {
				return nil, fmt.Errorf("-weights %q: %v", *weights, err)
			}
			o.weights = append(o.weights, w)
		}
		if len(o.weights) > o.jobs {
			return nil, fmt.Errorf("-weights names %d jobs but -jobs admits %d", len(o.weights), o.jobs)
		}
	}
	if *profiles != "" {
		for _, field := range strings.Split(*profiles, ",") {
			p, err := core.ParseProfile(strings.TrimSpace(field))
			if err != nil {
				return nil, fmt.Errorf("-profiles %q: %v", *profiles, err)
			}
			o.profiles = append(o.profiles, p)
		}
		if len(o.profiles) > o.jobs {
			return nil, fmt.Errorf("-profiles names %d jobs but -jobs admits %d", len(o.profiles), o.jobs)
		}
	}
	if *classes != "" {
		for _, field := range strings.Split(*classes, ",") {
			ac, err := aggservice.ParseClass(strings.TrimSpace(field))
			if err != nil {
				return nil, fmt.Errorf("-classes %q: %v", *classes, err)
			}
			o.classes = append(o.classes, ac)
		}
		if len(o.classes) > o.jobs {
			return nil, fmt.Errorf("-classes names %d jobs but -jobs admits %d", len(o.classes), o.jobs)
		}
	}
	return o, nil
}

// switchConfig turns the flags into a validated service configuration.
func (o *options) switchConfig() (aggservice.Config, error) {
	arch := pisa.BaseArch()
	if o.extended {
		arch = pisa.ExtendedArch()
	}
	mode := core.ModeApprox
	if o.full {
		mode = core.ModeFull
	}
	capacity := o.capacity
	if capacity == 0 && o.dynamic && o.workers > 0 {
		// Dynamic switches default to admission headroom: twice the
		// initial tenant set, within what the one-byte frame addresses.
		capacity = 2 * o.jobs
		if max := transport.MaxWorkers / o.workers; capacity > max {
			capacity = max
		}
		if capacity < o.jobs {
			capacity = o.jobs
		}
	}
	cfg := aggservice.Config{
		Workers: o.workers, Pool: o.pool, Modules: o.modules, Shards: o.shards,
		Jobs: o.jobs, Capacity: capacity, MaxOutstanding: o.quota,
		Weights: o.weights, Profiles: o.profiles, Classes: o.classes,
		Dynamic: o.dynamic, DrainTimeout: o.drainTimeout,
		Mode: mode, Arch: arch,
	}
	cfg.ClampShards()
	if err := cfg.Validate(); err != nil {
		return aggservice.Config{}, err
	}
	if cfg.Ports() > transport.MaxWorkers {
		return aggservice.Config{}, fmt.Errorf("%d provisioned jobs x %d workers = %d ports exceed the %d the UDP frame addresses",
			cfg.Ports()/o.workers, o.workers, cfg.Ports(), transport.MaxWorkers)
	}
	return cfg, nil
}

// mode and arch echoes for the startup banner.
func (o *options) modeName() string {
	if o.full {
		return "full"
	}
	return "approx"
}

func main() {
	o, err := parseOptions(os.Args[1:])
	if err != nil {
		log.Fatalf("switch: %v", err)
	}
	cfg, err := o.switchConfig()
	if err != nil {
		log.Fatalf("switch: %v", err)
	}

	udpAddr, err := net.ResolveUDPAddr("udp", o.addr)
	if err != nil {
		log.Fatalf("resolve: %v", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer conn.Close()
	// The socket comes up before the switch: a leaf's uplink pushes the
	// parent's finals back down through this server, and admission for the
	// initial jobs is negotiated at the parent during NewSwitch.
	srv, err := transport.NewUDPServer(conn, cfg.Ports(), transport.WithMmsg(o.mmsg))
	if err != nil {
		log.Fatalf("switch: %v", err)
	}
	if o.parent != "" {
		parentAddr, err := net.ResolveUDPAddr("udp", o.parent)
		if err != nil {
			log.Fatalf("resolve -parent: %v", err)
		}
		// The uplink dials one parent worker port per job: job j sends on
		// port j*leaves+leaf, so the client fabric must address the whole
		// provisioned job set across every sibling leaf.
		upFab, err := transport.DialUDP(parentAddr, cfg.Ports()/cfg.Workers*o.leaves, transport.WithMmsg(o.mmsg))
		if err != nil {
			log.Fatalf("dial -parent: %v", err)
		}
		defer upFab.Close()
		cfg.Uplink = &aggservice.UplinkConfig{
			Fabric: upFab, LeafID: o.leaf, Leaves: o.leaves,
			Control: aggservice.WireControl{Addr: parentAddr},
			Push:    srv,
		}
		log.Printf("leaf %d/%d: forwarding aggregates to parent %s", o.leaf, o.leaves, parentAddr)
	}
	sw, err := aggservice.NewSwitch(cfg)
	if err != nil {
		log.Fatalf("switch: %v", err)
	}
	// The lifecycle stats line: one log per admit / drain / release, with
	// the slot range the indirection table assigned and the incarnation's
	// final counters on the way out.
	sw.OnLifecycle = func(job int, ev aggservice.LifecycleEvent) {
		st, _ := sw.JobStats(job)
		if base, n, ok := sw.JobRange(job); ok {
			log.Printf("lifecycle: job %d %s (slots %d..%d) adds=%d chunks=%d outstanding=%d",
				job, ev, base, base+n-1, st.Adds, st.Completions, st.Outstanding)
			return
		}
		log.Printf("lifecycle: job %d %s adds=%d chunks=%d cacheHits=%d",
			job, ev, st.Adds, st.Completions, st.CacheHits)
	}

	dyn := "static tenant set"
	if cfg.Dynamic {
		dyn = "dynamic admit/evict enabled"
	}
	log.Printf("fpisa-switch (%s, %s, %d shards) listening on %s: %d/%d jobs admitted x %d workers (quota %d, %s)",
		o.modeName(), cfg.Arch.Name, sw.Shards(), conn.LocalAddr(), o.jobs, sw.Jobs(), o.workers, o.quota, dyn)
	log.Printf("wire I/O backend: %s (-mmsg %s)", srv.Backend(), o.mmsg)
	for j := 0; j < sw.Jobs(); j++ {
		if base, n, ok := sw.JobRange(j); ok {
			log.Printf("  job %d: ports %d..%d, slots %d..%d, weight %d, profile %s, class %v", j,
				cfg.Port(j, 0), cfg.Port(j, o.workers-1), base, base+n-1, sw.JobWeight(j), sw.JobProfile(j), sw.JobClass(j))
		}
	}
	log.Printf("pipeline resource report:\n%s", sw.Utilization())

	if o.statsEvery > 0 {
		go func() {
			tick := time.NewTicker(o.statsEvery)
			defer tick.Stop()
			for range tick.C {
				for j := 0; j < sw.Jobs(); j++ {
					st, _ := sw.JobStats(j)
					if st.Phase == aggservice.PhaseVacant && st.Adds == 0 {
						continue
					}
					log.Printf("job %d (%s, weight %d): adds=%d retrans=%d chunks=%d quotaDrops=%d schedDefers=%d outstanding=%d cacheHits=%d cacheBytes=%d coalesced=%d",
						j, st.Phase, st.Weight, st.Adds, st.Retransmits, st.Completions, st.QuotaDrops,
						st.SchedDefers, st.Outstanding, st.CacheHits, st.CacheBytes, st.Coalesced)
				}
				r := sw.Rejects()
				if r.Legacy+r.Malformed+r.BadJob+r.CrossJob+r.Draining+r.Backpressure+r.BadClass > 0 {
					log.Printf("rejects: legacy=%d malformed=%d badJob=%d crossJob=%d draining=%d backpressure=%d badClass=%d",
						r.Legacy, r.Malformed, r.BadJob, r.CrossJob, r.Draining, r.Backpressure, r.BadClass)
				}
				ss := srv.SyscallStats()
				log.Printf("wire: syscalls=%d (sendmmsg=%d recvmmsg=%d fallback=%d) datagrams=%d dgrams/syscall=%.2f sendErrors=%d",
					ss.Syscalls(), ss.Sendmmsg, ss.Recvmmsg, ss.SendFallback+ss.RecvFallback,
					ss.SentDatagrams+ss.RecvDatagrams, ss.DatagramsPerSyscall(), ss.SendErrors)
			}
		}()
	}

	if err := srv.Serve(sw.HandleBatch); err != nil {
		log.Fatalf("fpisa-switch: %v", err)
	}
	log.Fatal("fpisa-switch: socket closed")
}
