package main

import (
	"strings"
	"testing"
	"time"

	"fpisa/internal/transport"
)

func TestParseOptionsDefaults(t *testing.T) {
	o, err := parseOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:9099" || o.jobs != 1 || o.workers != 4 || o.pool != 8 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.dynamic || o.capacity != 0 || o.drainTimeout != 0 {
		t.Fatalf("lifecycle defaults: %+v", o)
	}
	if o.mmsg != transport.MmsgAuto {
		t.Fatalf("mmsg default: %v", o.mmsg)
	}
}

func TestParseOptionsMmsg(t *testing.T) {
	for _, tc := range []struct {
		arg  string
		want transport.MmsgMode
	}{
		{"auto", transport.MmsgAuto},
		{"on", transport.MmsgOn},
		{"off", transport.MmsgOff},
	} {
		o, err := parseOptions([]string{"-mmsg", tc.arg})
		if err != nil {
			t.Fatalf("-mmsg %s: %v", tc.arg, err)
		}
		if o.mmsg != tc.want {
			t.Fatalf("-mmsg %s parsed as %v", tc.arg, o.mmsg)
		}
	}
	if _, err := parseOptions([]string{"-mmsg", "always"}); err == nil {
		t.Error("bad -mmsg value accepted")
	}
}

func TestParseOptionsLifecycleFlags(t *testing.T) {
	o, err := parseOptions([]string{
		"-addr", "127.0.0.1:0", "-jobs", "2", "-workers", "3", "-pool", "4",
		"-dynamic", "-capacity", "5", "-draintimeout", "250ms", "-quota", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.dynamic || o.capacity != 5 || o.drainTimeout != 250*time.Millisecond {
		t.Fatalf("parsed: %+v", o)
	}
	cfg, err := o.switchConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Dynamic || cfg.Capacity != 5 || cfg.DrainTimeout != 250*time.Millisecond ||
		cfg.Jobs != 2 || cfg.MaxOutstanding != 7 {
		t.Fatalf("config: %+v", cfg)
	}
	if cfg.Ports() != 5*3 {
		t.Fatalf("ports = %d, want capacity x workers", cfg.Ports())
	}
}

func TestParseOptionsRejectsGarbage(t *testing.T) {
	if _, err := parseOptions([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := parseOptions([]string{"-jobs", "2", "stray"}); err == nil {
		t.Error("positional argument accepted")
	}
	if _, err := parseOptions([]string{"-draintimeout", "soon"}); err == nil {
		t.Error("unparseable duration accepted")
	}
	if _, err := parseOptions([]string{"-weights", "1,heavy"}); err == nil {
		t.Error("unparseable weight accepted")
	}
	if _, err := parseOptions([]string{"-jobs", "2", "-weights", "1,2,4"}); err == nil {
		t.Error("more weights than jobs accepted")
	}
}

func TestParseOptionsWeights(t *testing.T) {
	o, err := parseOptions([]string{"-jobs", "3", "-weights", "1, 2,4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.weights) != 3 || o.weights[0] != 1 || o.weights[1] != 2 || o.weights[2] != 4 {
		t.Fatalf("weights = %v", o.weights)
	}
	cfg, err := o.switchConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Weights) != 3 || cfg.Weights[2] != 4 {
		t.Fatalf("config weights = %v", cfg.Weights)
	}
	// Fewer weights than jobs: the tail defaults to 1 at admission.
	o, err = parseOptions([]string{"-jobs", "3", "-weights", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.weights) != 1 || o.weights[0] != 5 {
		t.Fatalf("partial weights = %v", o.weights)
	}
	if _, err := o.switchConfig(); err != nil {
		t.Fatalf("partial weights rejected: %v", err)
	}
	// A negative weight is caught by Config.Validate.
	o, _ = parseOptions([]string{"-jobs", "1", "-weights", "-2"})
	if _, err := o.switchConfig(); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestSwitchConfigValidation(t *testing.T) {
	// Invalid service config surfaces from Validate.
	o, err := parseOptions([]string{"-jobs", "3", "-capacity", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.switchConfig(); err == nil {
		t.Error("capacity below jobs accepted")
	}
	// -workers 0 with -dynamic must reach Validate's clean error, not a
	// divide-by-zero in the headroom default.
	o, err = parseOptions([]string{"-workers", "0", "-dynamic"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.switchConfig(); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Errorf("zero workers: %v", err)
	}
	// Port budget: capacity x workers must fit the one-byte UDP frame.
	o, err = parseOptions([]string{"-jobs", "4", "-capacity", "40", "-workers", "10"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.switchConfig(); err == nil || !strings.Contains(err.Error(), "ports") {
		t.Errorf("port overflow: %v", err)
	}
}

func TestSwitchConfigDynamicHeadroom(t *testing.T) {
	// -dynamic without -capacity provisions admission headroom (2x jobs)…
	o, err := parseOptions([]string{"-dynamic", "-jobs", "3", "-workers", "2"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := o.switchConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Capacity != 6 {
		t.Fatalf("capacity = %d, want 6", cfg.Capacity)
	}
	// …clamped to what the one-byte frame can address.
	o, err = parseOptions([]string{"-dynamic", "-jobs", "2", "-workers", "100"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = o.switchConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Capacity != 2 || cfg.Ports() > transport.MaxWorkers {
		t.Fatalf("clamped capacity = %d, ports = %d", cfg.Capacity, cfg.Ports())
	}
	// Static switches get no implicit headroom.
	o, _ = parseOptions([]string{"-jobs", "3"})
	cfg, err = o.switchConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Capacity != 0 || cfg.Ports() != 3*4 {
		t.Fatalf("static config: capacity=%d ports=%d", cfg.Capacity, cfg.Ports())
	}
}

func TestSwitchConfigShardClamp(t *testing.T) {
	o, err := parseOptions([]string{"-jobs", "1", "-pool", "1", "-shards", "64"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := o.switchConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards > 2 {
		t.Fatalf("shards = %d not clamped to the 2 slots", cfg.Shards)
	}
}
