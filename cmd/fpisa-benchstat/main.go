// Command fpisa-benchstat turns `go test -bench` output into the repo's
// BENCH_<date>.json trajectory format and gates CI on benchmark
// regressions.
//
// Summarize a run:
//
//	go test -bench . -benchmem -count 5 -run '^$' | tee bench.txt
//	fpisa-benchstat -summary bench.txt -date 2026-07-27 > BENCH_2026-07-27.json
//
// Gate a run against a baseline (exit status 1 on regression):
//
//	fpisa-benchstat -old baseline.txt -new bench.txt \
//	    -gate '^BenchmarkShardedSwitch' -threshold 0.15
//
// The gate compares mean ns/op by default; -metric gates any reported
// unit instead (e.g. -metric syscalls/op, -metric allocs/op) — benchmarks
// that do not report the unit are skipped:
//
//	fpisa-benchstat -old baseline.txt -new bench.txt \
//	    -gate '^BenchmarkUDPFabricThroughput' -metric syscalls/op
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"

	"fpisa/internal/benchparse"
)

func main() {
	summary := flag.String("summary", "", "bench output file to summarize as JSON on stdout")
	date := flag.String("date", "", "date stamp (YYYY-MM-DD) for the summary")
	oldFile := flag.String("old", "", "baseline bench output (with -new)")
	newFile := flag.String("new", "", "candidate bench output (with -old)")
	gate := flag.String("gate", "^BenchmarkShardedSwitch", "regexp of benchmarks the regression gate covers")
	threshold := flag.Float64("threshold", 0.15, "mean regression ratio that fails the gate")
	metric := flag.String("metric", "ns/op", "metric unit the gate compares (ns/op, allocs/op, syscalls/op, ...)")
	flag.Parse()

	switch {
	case *summary != "":
		if err := writeSummary(*summary, *date); err != nil {
			log.Fatal(err)
		}
	case *oldFile != "" && *newFile != "":
		ok, err := runGate(*oldFile, *newFile, *gate, *threshold, *metric)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseFile(path string) (*benchparse.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchparse.Parse(f)
}

func writeSummary(path, date string) error {
	rep, err := parseFile(path)
	if err != nil {
		return err
	}
	rep.Date = date
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in %s", path)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func runGate(oldPath, newPath, gate string, threshold float64, metric string) (bool, error) {
	pat, err := regexp.Compile(gate)
	if err != nil {
		return false, fmt.Errorf("bad -gate pattern: %v", err)
	}
	oldRep, err := parseFile(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := parseFile(newPath)
	if err != nil {
		return false, err
	}
	ds := benchparse.CompareMetric(oldRep, newRep, pat, metric)
	if len(ds) == 0 {
		// A silent pass on an empty comparison would defeat the gate.
		fmt.Printf("benchstat gate: no %q benchmarks reporting %s in common between %s and %s; nothing gated\n",
			gate, metric, oldPath, newPath)
		return true, nil
	}
	ok := true
	fmt.Printf("%-45s %14s %14s %8s\n", "benchmark", "old "+metric, "new "+metric, "delta")
	for _, d := range ds {
		verdict := ""
		if d.Regression(threshold) {
			verdict = "  << REGRESSION"
			ok = false
		}
		fmt.Printf("%-45s %14.1f %14.1f %+7.1f%%%s\n", d.Name, d.Old, d.New, 100*d.Ratio, verdict)
	}
	if !ok {
		fmt.Printf("FAIL: gate %q exceeded the +%.0f%% %s threshold\n", gate, 100*threshold, metric)
	}
	return ok, nil
}
