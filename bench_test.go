package fpisa

// One benchmark per paper table/figure (DESIGN.md §4) plus ablations on
// the design choices. The benchmarks measure the regeneration cost of each
// artifact and, via ReportMetric, surface the artifact's headline number so
// `go test -bench . -benchmem` doubles as a summary of the reproduction.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/banzai"
	"fpisa/internal/core"
	"fpisa/internal/gradients"
	"fpisa/internal/payload"
	"fpisa/internal/perfmodel"
	"fpisa/internal/pisa"
	"fpisa/internal/query"
	"fpisa/internal/tcam"
	"fpisa/internal/train"
	"fpisa/internal/transport"
)

// BenchmarkTable1_ALUSynthesis regenerates the synthesis cost model.
func BenchmarkTable1_ALUSynthesis(b *testing.B) {
	var area float64
	for i := 0; i < b.N; i++ {
		rs := banzai.Table1()
		area = rs[len(rs)-1].AreaUM2
	}
	b.ReportMetric(area, "FPU-um2")
}

// BenchmarkTable3_ResourceUtilization compiles the FPISA-A program for the
// base architecture and reports the headline VLIW pressure.
func BenchmarkTable3_ResourceUtilization(b *testing.B) {
	var maxVliw float64
	for i := 0; i < b.N; i++ {
		pa, err := core.NewPipelineAggregator(core.DefaultFP32(core.ModeApprox), 1, 256, pisa.BaseArch())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range pa.Utilization().Rows() {
			if r.Resource == "VLIW instruction slots" {
				maxVliw = r.MaxStagePct
			}
		}
	}
	b.ReportMetric(maxVliw, "maxVLIW-%")
}

// BenchmarkFigure6_EndiannessConversion measures the FP32 payload byte-swap
// kernel — the per-core cost Fig. 6 quantifies.
func BenchmarkFigure6_EndiannessConversion(b *testing.B) {
	buf := make([]byte, 1<<16)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload.SwapBytes32(buf)
	}
	elemsPerSec := float64(b.N) * float64(len(buf)/4) / b.Elapsed().Seconds()
	b.ReportMetric(elemsPerSec/1e9, "Gconv/s")
	b.ReportMetric(payload.DesiredRatePerSec(100, 4)/1e9, "needed-G/s")
}

// BenchmarkFigure6_FP16 measures the FP16 swap kernel (the worst gap).
func BenchmarkFigure6_FP16(b *testing.B) {
	buf := make([]byte, 1<<16)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload.SwapBytes16(buf)
	}
	elemsPerSec := float64(b.N) * float64(len(buf)/2) / b.Elapsed().Seconds()
	b.ReportMetric(float64(payload.CoresForLineRate(100, 2, elemsPerSec)), "cores-for-100G")
}

// BenchmarkFigure7_GradientRatioDistribution regenerates the max/min ratio
// histogram and reports the below-2^7 fraction.
func BenchmarkFigure7_GradientRatioDistribution(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		g := gradients.NewGenerator(gradients.VGG19, 42)
		h := gradients.RatioHistogram(g.WorkerGradients(8, 10000))
		frac = h.FractionBelow(7)
	}
	b.ReportMetric(frac*100, "pct-under-2^7")
}

// BenchmarkFigure8_ErrorDistribution regenerates the FPISA-A error
// histogram and reports the overwrite-error share.
func BenchmarkFigure8_ErrorDistribution(b *testing.B) {
	g := gradients.NewGenerator(gradients.VGG19, 42)
	ws := g.WorkerGradients(8, 10000)
	var share float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := gradients.ErrorDistribution(core.DefaultFP32(core.ModeApprox), ws)
		if err != nil {
			b.Fatal(err)
		}
		share = rep.OverwriteShare
	}
	b.ReportMetric(share*100, "overwrite-%")
}

// BenchmarkFigure9_Convergence runs a reduced-epoch training pair and
// reports the accuracy gap between default and FPISA-A aggregation.
func BenchmarkFigure9_Convergence(b *testing.B) {
	trainSet, testSet := train.SyntheticDataset(512, 256, 12, 4, 3)
	cfg := train.DefaultSGD()
	cfg.Epochs = 6
	arch := train.Fig9Architectures()[1]
	var gap float64
	for i := 0; i < b.N; i++ {
		exact, err := train.Run(arch, trainSet, testSet, cfg, train.ExactReducer{})
		if err != nil {
			b.Fatal(err)
		}
		fp, err := train.Run(arch, trainSet, testSet, cfg, train.FPISAReducer{Cfg: core.DefaultFP32(core.ModeApprox)})
		if err != nil {
			b.Fatal(err)
		}
		gap = exact.Final - fp.Final
		if gap < 0 {
			gap = -gap
		}
	}
	b.ReportMetric(gap*100, "accuracy-gap-pct")
}

// BenchmarkFigure10_Goodput evaluates the goodput model over both sweeps.
func BenchmarkFigure10_Goodput(b *testing.B) {
	r := perfmodel.DefaultRates()
	var got float64
	for i := 0; i < b.N; i++ {
		_ = perfmodel.Fig10Left(r, 10)
		_ = perfmodel.Fig10Right(r, perfmodel.Fig10Sizes())
		got = r.Goodput(perfmodel.FPISACPUOpt, 1, 16<<10)
	}
	b.ReportMetric(got, "opt-1core-Gbps")
}

// BenchmarkFigure11_TrainingSpeedup evaluates the end-to-end model.
func BenchmarkFigure11_TrainingSpeedup(b *testing.B) {
	var dl float64
	for i := 0; i < b.N; i++ {
		for _, s := range perfmodel.Fig11(2) {
			if s.Model == "DeepLight" {
				dl = s.SpeedupPct
			}
		}
	}
	b.ReportMetric(dl, "DeepLight-2core-pct")
}

// BenchmarkFigure13_Queries runs all five queries through both plans.
func BenchmarkFigure13_Queries(b *testing.B) {
	e := query.NewEngine(query.Generate(query.DefaultScale(), 2, 7))
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range query.Queries() {
			_, bc := e.RunBaseline(q)
			_, sc, err := e.RunSwitch(q)
			if err != nil {
				b.Fatal(err)
			}
			speedup = bc.BaselineSeconds(2) / sc.SwitchSeconds(2)
		}
	}
	b.ReportMetric(speedup, "last-speedup-x")
}

// BenchmarkAppendixA_AdvancedOps exercises the lookup-table float ops.
func BenchmarkAppendixA_AdvancedOps(b *testing.B) {
	lt, _ := core.NewLog2Table(10)
	st, _ := core.NewSqrtTable(10)
	mt, _ := core.NewMulTable(8)
	x := float32(3.7)
	var sink float32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += lt.Log2(x) + st.Sqrt(x) + mt.Mul(x, x) + core.MulExponentAdd(x, x)
	}
	_ = sink
}

// --- Core micro-benchmarks and ablations --------------------------------

// BenchmarkCoreAdd measures the software model's per-addition cost.
func BenchmarkCoreAdd(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeApprox, core.ModeFull} {
		b.Run(mode.String(), func(b *testing.B) {
			acc := core.MustNewAccumulator(core.DefaultFP32(mode), 1)
			vals := make([]float32, 1024)
			rng := rand.New(rand.NewSource(1))
			for i := range vals {
				vals[i] = float32(rng.NormFloat64())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.AddBits(0, uint32(i)&0x3F000000|0x3F800000)
				_ = vals
			}
		})
	}
}

// BenchmarkPipelinePacket measures the simulated switch's per-packet cost.
func BenchmarkPipelinePacket(b *testing.B) {
	pa, err := core.NewPipelineAggregator(core.DefaultFP32(core.ModeApprox), 1, 16, pisa.BaseArch())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pa.Add(i&15, []float32{1.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGuardBits quantifies read-out error vs guard bits — the
// Appendix A.1 rounding design choice.
func BenchmarkAblationGuardBits(b *testing.B) {
	g := gradients.NewGenerator(gradients.VGG19, 42)
	ws := g.WorkerGradients(8, 2000)
	for _, guard := range []int{0, 2, 4} {
		cfg := core.Config{Format: core.DefaultFP32(core.ModeApprox).Format,
			RegWidth: 32, GuardBits: guard, Mode: core.ModeApprox}
		if guard > 0 {
			cfg.Rounding = core.RoundNearestEven
		}
		b.Run(map[int]string{0: "g0-trunc", 2: "g2-rne", 4: "g4-rne"}[guard], func(b *testing.B) {
			var med float64
			for i := 0; i < b.N; i++ {
				rep, err := gradients.ErrorDistribution(cfg, ws)
				if err != nil {
					b.Fatal(err)
				}
				med = rep.MedianError
			}
			b.ReportMetric(med*1e9, "median-err-1e-9")
		})
	}
}

// BenchmarkAblationLPMvsDirectCLZ compares the Fig. 5 table-based
// count-leading-zeros against a direct instruction — the hardware gap
// FPISA works around.
func BenchmarkAblationLPMvsDirectCLZ(b *testing.B) {
	clz := tcam.MustNewCLZ(32)
	b.Run("lpm-table", func(b *testing.B) {
		var s int
		for i := 0; i < b.N; i++ {
			s += clz.Count(uint64(uint32(i)*2654435761 + 1))
		}
		_ = s
	})
	b.Run("direct", func(b *testing.B) {
		var s int
		for i := 0; i < b.N; i++ {
			s += leadingZeros32(uint32(i)*2654435761 + 1)
		}
		_ = s
	})
}

func leadingZeros32(x uint32) int {
	n := 0
	for x&0x80000000 == 0 && n < 32 {
		x <<= 1
		n++
	}
	return n
}

// BenchmarkAblationQuantizeVsCopy contrasts SwitchML's per-element host
// work with FPISA's — the root cause of the Fig. 10 core-count gap.
func BenchmarkAblationQuantizeVsCopy(b *testing.B) {
	src := make([]float32, 4096)
	rng := rand.New(rand.NewSource(2))
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	wire := make([]byte, 4*len(src))
	scale := payload.ScaleExpFor(payload.MaxBiasedExp(src), 8)

	b.Run("switchml-quantize", func(b *testing.B) {
		b.SetBytes(int64(len(wire)))
		for i := 0; i < b.N; i++ {
			if err := payload.QuantizeToWire(wire, src, scale); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fpisa-serialize", func(b *testing.B) {
		b.SetBytes(int64(len(wire)))
		for i := 0; i < b.N; i++ {
			if err := payload.FloatsToWire(wire, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fpisa-opt-copy", func(b *testing.B) {
		b.SetBytes(int64(len(wire)))
		for i := 0; i < b.N; i++ {
			if err := payload.CopyWire(wire, src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedSwitch measures aggregation-service packet throughput
// as the shard count grows: every packet still runs the full FPISA
// pipeline simulation, but with N shards packets for different slots only
// contend on their own shard's lock, so on a multi-core host throughput
// scales with shards (GOMAXPROCS permitting) while a 1-shard switch
// serializes on its single mutex.
func BenchmarkShardedSwitch(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dshard", shards), func(b *testing.B) {
			cfg := aggservice.Config{Workers: 1, Pool: 512, Modules: 1, Shards: shards,
				Mode: core.ModeApprox, Arch: pisa.BaseArch()}
			sw, err := aggservice.NewSwitch(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				vals := []float32{1.5}
				for pb.Next() {
					c := uint32(next.Add(1) - 1)
					sw.Handle(0, aggservice.EncodeAdd(0, c, vals))
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
	// Profile variant: the same 8-shard switch, but the tenant negotiated
	// truncating bfloat16 at admission — half-width ADD values through the
	// per-range aggregator bank instead of the compiled default pipeline.
	b.Run("8shard-bf16", func(b *testing.B) {
		prof := core.NumericProfile{Format: core.FormatBF16}
		cfg := aggservice.Config{Workers: 1, Pool: 512, Modules: 1, Shards: 8,
			Profiles: []core.NumericProfile{prof},
			Mode:     core.ModeApprox, Arch: pisa.BaseArch()}
		sw, err := aggservice.NewSwitch(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var next atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			vals := []float32{1.5}
			for pb.Next() {
				c := uint32(next.Add(1) - 1)
				sw.Handle(0, aggservice.EncodeAddProfile(0, c, 0, prof, vals))
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
	})
}

// BenchmarkFabricThroughput measures raw fabric packet throughput at 8
// workers: the ring-backed vectored path (SendBatch/RecvBatch with
// reusable buffers) against the legacy copying shim (one packet, one
// allocation, one lock round per call). The handler answers every request
// with a canned immutable reply, so the numbers isolate fabric overhead —
// the gap is the PR's zero-copy payoff.
func BenchmarkFabricThroughput(b *testing.B) {
	const (
		workers  = 8
		batch    = 32
		paySize  = 64
		ringSize = 4096
	)
	reply := make([]byte, paySize)
	reply[0] = 0xF2
	handler := func(w int, pkts [][]byte, out *transport.DeliveryList) {
		for range pkts {
			out.Unicast(w, reply)
		}
	}
	payload := make([]byte, paySize)
	run := func(b *testing.B, pktSize int, sendRecv func(fab *transport.Memory, w, n int)) {
		fab, err := transport.NewMemory(transport.MemoryConfig{
			Workers: workers, BatchHandler: handler, QueueDepth: ringSize,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer fab.Close()
		b.SetBytes(int64(pktSize))
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sendRecv(fab, w, b.N/workers)
			}(w)
		}
		wg.Wait()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		// The in-memory fabric crosses no kernel boundary; the explicit
		// zero keeps the syscalls/op column present for every fabric
		// benchmark in the BENCH_ trajectory (the gate skips zeros).
		b.ReportMetric(0, "syscalls/op")
	}

	b.Run("legacy-shim", func(b *testing.B) {
		run(b, paySize, func(fab *transport.Memory, w, n int) {
			for i := 0; i < n; i++ {
				if err := transport.Send(fab, w, payload); err != nil {
					b.Error(err)
					return
				}
				if _, err := transport.Recv(fab, w, time.Second); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("batched-ring", func(b *testing.B) {
		pkts := make([][]byte, batch)
		for i := range pkts {
			pkts[i] = payload
		}
		run(b, paySize, func(fab *transport.Memory, w, n int) {
			bufs := make([][]byte, batch)
			for i := 0; i < n; i += batch {
				if err := fab.SendBatch(w, pkts); err != nil {
					b.Error(err)
					return
				}
				for got := 0; got < batch; {
					k, err := fab.RecvBatch(w, bufs[got:], time.Second)
					if err != nil {
						b.Error(err)
						return
					}
					got += k
				}
			}
		})
	})
	// Profile-width variants: the vectored path carrying real wire ADDs
	// (8 modules) in f32 vs truncating bf16 — the 16-bit profile's halved
	// value payload shows up directly in the bytes moved per packet.
	for _, pv := range []struct {
		name string
		prof core.NumericProfile
	}{
		{"batched-ring-f32add", core.DefaultProfile},
		{"batched-ring-bf16add", core.NumericProfile{Format: core.FormatBF16}},
	} {
		b.Run(pv.name, func(b *testing.B) {
			add := aggservice.EncodeAddProfile(0, 0, 0, pv.prof, make([]float32, 8))
			pkts := make([][]byte, batch)
			for i := range pkts {
				pkts[i] = add
			}
			run(b, len(add), func(fab *transport.Memory, w, n int) {
				bufs := make([][]byte, batch)
				for i := 0; i < n; i += batch {
					if err := fab.SendBatch(w, pkts); err != nil {
						b.Error(err)
						return
					}
					for got := 0; got < batch; {
						k, err := fab.RecvBatch(w, bufs[got:], time.Second)
						if err != nil {
							b.Error(err)
							return
						}
						got += k
					}
				}
			})
		})
	}
}

// BenchmarkUDPFabricThroughput measures the UDP fabric over real loopback
// sockets at 8 workers × batch 16 with ~16 KiB packets (so each batch
// spans several wire datagrams and kernel batching has datagrams to
// batch): the sendmmsg/recvmmsg backend against the forced per-datagram
// loop. The headline metric is syscalls/op — kernel entries per packet,
// measured from the fabric's own SyscallStats across both halves of the
// round trip — alongside the achieved datagrams per syscall and allocs/op
// (the pooled read buffers must keep the steady state allocation-free).
// Loopback drops bursts under pressure, so lost replies are retransmitted
// rather than waited for; both backends run the identical loss loop.
func BenchmarkUDPFabricThroughput(b *testing.B) {
	const (
		workers = 8
		batch   = 16
		paySize = 16 << 10
	)
	payload := make([]byte, paySize)
	payload[0] = 0xF2
	reply := make([]byte, paySize)
	reply[0] = 0xF2
	handler := func(w int, pkts [][]byte, out *transport.DeliveryList) {
		for range pkts {
			out.Unicast(w, reply)
		}
	}
	for _, tc := range []struct {
		name string
		mode transport.MmsgMode
	}{
		{"mmsg", transport.MmsgOn},
		{"loop", transport.MmsgOff},
	} {
		b.Run(tc.name, func(b *testing.B) {
			fab, err := transport.NewUDP(workers, handler, transport.WithMmsg(tc.mode))
			if err != nil {
				b.Fatal(err)
			}
			defer fab.Close()
			fab.SetBuffers(4 << 20)
			pkts := make([][]byte, batch)
			for i := range pkts {
				pkts[i] = payload
			}
			b.SetBytes(paySize)
			b.ReportAllocs()
			before := fab.SyscallStats()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					bufs := make([][]byte, batch)
					for i := range bufs {
						bufs[i] = make([]byte, paySize+16)
					}
					n := b.N / workers
					for i := 0; i < n; i += batch {
						if err := fab.SendBatch(w, pkts); err != nil {
							b.Error(err)
							return
						}
						for got := 0; got < batch; {
							k, err := fab.RecvBatch(w, bufs[got:], 100*time.Millisecond)
							if err == transport.ErrTimeout {
								// The loopback queue dropped part of the
								// burst: retransmit the batch (surplus
								// replies are absorbed by later rounds).
								if err := fab.SendBatch(w, pkts); err != nil {
									b.Error(err)
									return
								}
								continue
							}
							if err != nil {
								b.Error(err)
								return
							}
							got += k
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			after := fab.SyscallStats()
			calls := after.Syscalls() - before.Syscalls()
			dgrams := (after.SentDatagrams + after.RecvDatagrams) -
				(before.SentDatagrams + before.RecvDatagrams)
			b.ReportMetric(float64(calls)/float64(b.N), "syscalls/op")
			if calls > 0 {
				b.ReportMetric(float64(dgrams)/float64(calls), "dgrams/syscall")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkAdaptiveBatch measures a full single-worker all-reduce through
// the vectored Memory fabric with the adaptive batch controller, on a
// clean path and under 10% injected loss — the pkts/s the protocol
// sustains while the batch size self-tunes, plus where it settles.
func BenchmarkAdaptiveBatch(b *testing.B) {
	for _, tc := range []struct {
		name string
		loss float64
	}{
		{"clean", 0},
		{"loss10", 0.10},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := aggservice.Config{Workers: 1, Pool: 64, Modules: 1, Shards: 4,
				Mode: core.ModeApprox, Arch: pisa.BaseArch()}
			vec := make([]float32, 4096)
			for i := range vec {
				vec[i] = float32(i%13) * 0.5
			}
			var pkts uint64
			var lastBatch int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer() // switch construction is not the protocol cost
				sw, err := aggservice.NewSwitch(cfg)
				if err != nil {
					b.Fatal(err)
				}
				fab, err := transport.NewMemory(transport.MemoryConfig{
					Workers: 1, BatchHandler: sw.HandleBatch,
					UplinkLoss: tc.loss, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				w := aggservice.NewWorker(0, fab, cfg)
				w.Batch = 32
				w.Timeout = 2 * time.Millisecond
				w.Retries = 100_000
				b.StartTimer()
				if _, err := w.Reduce(vec); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				pkts += w.SentPackets
				lastBatch = w.LastBatch
				fab.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
			b.ReportMetric(float64(lastBatch), "final-batch")
		})
	}
}

// BenchmarkMultiJobSwitch measures tenancy overhead: the same packet load
// spread across N jobs sharing one sharded switch. Per-job slot partitions
// keep the shard math identical, so throughput should hold as jobs grow —
// the per-job atomics are the only added cost.
func BenchmarkMultiJobSwitch(b *testing.B) {
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%djob", jobs), func(b *testing.B) {
			cfg := aggservice.Config{Workers: 1, Pool: 256, Modules: 1, Shards: 8, Jobs: jobs,
				Mode: core.ModeApprox, Arch: pisa.BaseArch()}
			sw, err := aggservice.NewSwitch(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				vals := []float32{1.5}
				for pb.Next() {
					n := next.Add(1) - 1
					job := int(n) % jobs
					c := uint32(n) / uint32(jobs)
					sw.Handle(cfg.Port(job, 0), aggservice.EncodeAdd(job, c, vals))
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkTreeAggregation measures the hierarchical composition end to
// end: 8 workers reducing through one flat switch vs the same 8 workers
// split across 4 leaf switches feeding a spine (each chunk crosses two
// pipeline levels and an extra fabric round trip). The flat/tree gap is
// the per-level latency cost; the payoff the topology buys is fan-in — the
// spine sees 4 ADDs per chunk instead of 8, which is what lets a fixed
// switch port budget scale past one rack.
func BenchmarkTreeAggregation(b *testing.B) {
	const (
		totalWorkers = 8
		nLeaves      = 4
		vecLen       = 4096
	)
	vecs := make([][]float32, totalWorkers)
	for w := range vecs {
		vecs[w] = make([]float32, vecLen)
		for i := range vecs[w] {
			vecs[w][i] = float32((w*31+i)%17) * 0.25
		}
	}
	reduceAll := func(b *testing.B, fabs []transport.Fabric, perFab int, cfg aggservice.Config) {
		var wg sync.WaitGroup
		for f := range fabs {
			for w := 0; w < perFab; w++ {
				wg.Add(1)
				go func(f, w int) {
					defer wg.Done()
					wk := aggservice.NewJobWorker(0, w, fabs[f], cfg)
					wk.Timeout = 10 * time.Millisecond
					wk.Retries = 10_000
					if _, err := wk.Reduce(vecs[f*perFab+w]); err != nil {
						b.Error(err)
					}
				}(f, w)
			}
		}
		wg.Wait()
	}

	b.Run("flat-8worker", func(b *testing.B) {
		cfg := aggservice.Config{Workers: totalWorkers, Pool: 64, Modules: 1, Shards: 4,
			Mode: core.ModeApprox, Arch: pisa.BaseArch()}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer() // one reduce per incarnation: rebuild, don't rewind
			sw, err := aggservice.NewSwitch(cfg)
			if err != nil {
				b.Fatal(err)
			}
			fab, err := transport.NewMemory(transport.MemoryConfig{
				Workers: totalWorkers, BatchHandler: sw.HandleBatch,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			reduceAll(b, []transport.Fabric{fab}, totalWorkers, cfg)
			b.StopTimer()
			fab.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(b.N)*vecLen/b.Elapsed().Seconds(), "chunks/s")
	})
	b.Run("tree-4leaf-1spine", func(b *testing.B) {
		leafCfg := aggservice.Config{Workers: totalWorkers / nLeaves, Pool: 64, Modules: 1, Shards: 2,
			Mode: core.ModeApprox, Arch: pisa.BaseArch()}
		spineCfg := aggservice.Config{Workers: nLeaves, Pool: 64, Modules: 1, Shards: 4,
			Mode: core.ModeApprox, Arch: pisa.BaseArch()}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			spine, err := aggservice.NewSwitch(spineCfg)
			if err != nil {
				b.Fatal(err)
			}
			spineFab, err := transport.NewMemory(transport.MemoryConfig{
				Workers: nLeaves, BatchHandler: spine.HandleBatch,
			})
			if err != nil {
				b.Fatal(err)
			}
			leaves := make([]*aggservice.Switch, nLeaves)
			fabs := make([]transport.Fabric, nLeaves)
			for li := 0; li < nLeaves; li++ {
				li := li
				fab, err := transport.NewMemory(transport.MemoryConfig{
					Workers: leafCfg.Workers,
					BatchHandler: func(w int, pkts [][]byte, out *transport.DeliveryList) {
						leaves[li].HandleBatch(w, pkts, out)
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				fabs[li] = fab
				cfg := leafCfg
				cfg.Uplink = &aggservice.UplinkConfig{
					Fabric: spineFab, LeafID: li, Leaves: nLeaves,
					Control: aggservice.SwitchControl{Parent: spine},
					Push:    fab,
				}
				if leaves[li], err = aggservice.NewSwitch(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			reduceAll(b, fabs, leafCfg.Workers, leafCfg)
			b.StopTimer()
			for _, l := range leaves {
				l.Close()
			}
			spine.Close()
			for _, f := range fabs {
				f.(*transport.Memory).Close()
			}
			spineFab.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(b.N)*vecLen/b.Elapsed().Seconds(), "chunks/s")
	})
}

// BenchmarkPipelineReplicaConstruction contrasts a full program compile
// against stamping a replica from an existing pipeline — the cost that
// makes per-shard replicas viable.
func BenchmarkPipelineReplicaConstruction(b *testing.B) {
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewPipelineAggregator(core.DefaultFP32(core.ModeApprox), 1, 256, pisa.BaseArch()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replicate", func(b *testing.B) {
		pa, err := core.NewPipelineAggregator(core.DefaultFP32(core.ModeApprox), 1, 256, pisa.BaseArch())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = pa.Replicate()
		}
	})
}

// BenchmarkAblationModulesPerPipeline measures multi-module packet
// processing on the extended architecture (§4.2's throughput unlock).
func BenchmarkAblationModulesPerPipeline(b *testing.B) {
	for _, modules := range []int{1, 3} {
		arch := pisa.ExtendedArch()
		b.Run(map[int]string{1: "1-module", 3: "3-modules"}[modules], func(b *testing.B) {
			pa, err := core.NewPipelineAggregator(core.DefaultFP32(core.ModeApprox), modules, 16, arch)
			if err != nil {
				b.Fatal(err)
			}
			vals := make([]float32, modules)
			for i := range vals {
				vals[i] = 1.25
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pa.Add(i&15, vals); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(modules)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
		})
	}
}
