// Package fpisa is the public API of the FPISA reproduction: floating-point
// aggregation on programmable-switch pipelines, after "Unlocking the Power
// of Inline Floating-Point Operations on Programmable Switches" (NSDI'22).
//
// Three entry points cover most uses:
//
//   - Aggregator — the bit-exact software model of FPISA's decoupled
//     exponent/signed-mantissa accumulation (full and approximate modes),
//     for embedding in-switch-equivalent FP aggregation in applications
//     and for numerical studies.
//   - SwitchSim — the same algorithm compiled to a simulated PISA pipeline
//     and driven by packets, with the paper's resource accounting.
//   - Sum / CompareKey — one-shot helpers.
//
// The substrates live under internal/: the pipeline simulator, the
// aggregation service (a multi-tenant sharded switch with a runtime job
// lifecycle), and the transport fabrics it runs over — a vectored,
// buffer-reusing I/O contract (internal/transport's SendBatch/RecvBatch/
// BatchHandler) that moves packet vectors per pipeline pass instead of one
// datagram and two copies at a time. The cmd/fpisa-bench tool regenerates
// every table and figure of the paper's evaluation; cmd/fpisa-switch and
// cmd/fpisa-query run and operate the service over real sockets.
package fpisa

import (
	"fpisa/internal/core"
	"fpisa/internal/fpnum"
	"fpisa/internal/pisa"
)

// Mode selects the FPISA variant.
type Mode int

const (
	// ModeApprox is FPISA-A (§4.3): deployable on existing switch
	// hardware; values whose exponents differ by more than the headroom
	// overwrite the accumulator (a bounded, rare error on gradient-like
	// data).
	ModeApprox Mode = iota
	// ModeFull is complete FPISA: exact alignment in both directions; a
	// pipeline implementation needs the paper's §4.2 hardware extensions.
	ModeFull
)

func (m Mode) String() string {
	if m == ModeFull {
		return "FPISA"
	}
	return "FPISA-A"
}

func (m Mode) coreMode() core.Mode {
	if m == ModeFull {
		return core.ModeFull
	}
	return core.ModeApprox
}

// Aggregator is a vector of FPISA accumulation slots.
type Aggregator struct {
	acc *core.Accumulator
}

// NewAggregator creates an FP32 aggregator with n slots.
func NewAggregator(mode Mode, n int) (*Aggregator, error) {
	acc, err := core.NewAccumulator(core.DefaultFP32(mode.coreMode()), n)
	if err != nil {
		return nil, err
	}
	return &Aggregator{acc: acc}, nil
}

// NewAggregatorFP16 creates an FP16-wire-format aggregator with n slots.
func NewAggregatorFP16(mode Mode, n int) (*Aggregator, error) {
	acc, err := core.NewAccumulator(core.DefaultFP16(mode.coreMode()), n)
	if err != nil {
		return nil, err
	}
	return &Aggregator{acc: acc}, nil
}

// Add accumulates v into slot i.
func (a *Aggregator) Add(i int, v float32) error { return a.acc.Add(i, v) }

// Read returns slot i's renormalized value without modifying it.
func (a *Aggregator) Read(i int) float32 { return a.acc.ReadFloat32(i) }

// ReadReset returns slot i's value and zeroes the slot.
func (a *Aggregator) ReadReset(i int) float32 {
	v := a.acc.ReadFloat32(i)
	a.acc.Reset(i)
	return v
}

// Overflowed reports slot i's sticky overflow flag (§3.3).
func (a *Aggregator) Overflowed(i int) bool { return a.acc.Overflowed(i) }

// Len returns the slot count.
func (a *Aggregator) Len() int { return a.acc.Len() }

// Sum aggregates values through a single FPISA slot and returns the result
// — the switch-equivalent of summing a packet stream.
func Sum(mode Mode, values []float32) (float32, error) {
	a, err := NewAggregator(mode, 1)
	if err != nil {
		return 0, err
	}
	for _, v := range values {
		if err := a.Add(0, v); err != nil {
			return 0, err
		}
	}
	return a.Read(0), nil
}

// CompareKey maps an FP32 value to an unsigned key whose integer order
// matches the floating-point order — FPISA's in-switch comparison (§6),
// one sign test plus one XOR.
func CompareKey(v float32) uint32 { return fpnum.OrderedKey32(v) }

// SwitchSim is the FPISA algorithm compiled to a simulated PISA pipeline
// and driven by packets.
type SwitchSim struct {
	pa *core.PipelineAggregator
}

// NewSwitchSim compiles FPISA for `modules` parallel values per packet and
// `slots` accumulation slots. With extended=false the base Tofino-like
// architecture is used (FPISA-A only, one module); extended=true enables
// the paper's §4.2 hardware extensions.
func NewSwitchSim(mode Mode, modules, slots int, extended bool) (*SwitchSim, error) {
	arch := pisa.BaseArch()
	if extended {
		arch = pisa.ExtendedArch()
	}
	pa, err := core.NewPipelineAggregator(core.DefaultFP32(mode.coreMode()), modules, slots, arch)
	if err != nil {
		return nil, err
	}
	return &SwitchSim{pa: pa}, nil
}

// Add sends an ADD packet carrying one value per module and returns the
// running sums.
func (s *SwitchSim) Add(slot int, vals []float32) ([]float32, error) {
	r, err := s.pa.Add(slot, vals)
	if err != nil {
		return nil, err
	}
	return r.Values, nil
}

// Read sends a READ packet.
func (s *SwitchSim) Read(slot int) ([]float32, error) {
	r, err := s.pa.Read(slot)
	if err != nil {
		return nil, err
	}
	return r.Values, nil
}

// ReadReset sends a READ+RESET packet.
func (s *SwitchSim) ReadReset(slot int) ([]float32, error) {
	r, err := s.pa.ReadReset(slot)
	if err != nil {
		return nil, err
	}
	return r.Values, nil
}

// Utilization renders the compiled program's resource report (the paper's
// Table 3 layout).
func (s *SwitchSim) Utilization() string { return s.pa.Utilization().String() }

// MaxModules reports how many parallel FPISA modules fit per pipeline: one
// on existing hardware (Appendix B's VLIW pressure), several with the §4.2
// extensions.
func MaxModules(extended bool) int {
	arch := pisa.BaseArch()
	if extended {
		arch = pisa.ExtendedArch()
	}
	return core.MaxModules(arch)
}

// Version identifies the reproduction. 1.1 redesigned the transport layer
// around vectored zero-copy I/O and adaptive batching.
const Version = "fpisa-repro 1.1 (NSDI'22 reproduction)"
