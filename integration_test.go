package fpisa

// Cross-system integration test: the same gradient vectors reduced through
// the SwitchML baseline and the FPISA aggregation service must agree with
// each other and with the exact sums, while FPISA uses half the protocol
// packets and none of the quantization work — §5.2.3 measured end to end.

import (
	"math"
	"sync"
	"testing"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/gradients"
	"fpisa/internal/pisa"
	"fpisa/internal/switchml"
	"fpisa/internal/transport"
)

func TestSwitchMLvsFPISAEndToEnd(t *testing.T) {
	const (
		workers = 4
		vecLen  = 64
	)
	gen := gradients.NewGenerator(gradients.VGG19, 123)
	vecs := gen.WorkerGradients(workers, vecLen)
	exact := gradients.AggregateExact(vecs)

	// --- SwitchML baseline ---
	smlCfg := switchml.Config{Workers: workers, Pool: 4, Elems: 8}
	smlSwitch, err := switchml.NewSwitch(smlCfg)
	if err != nil {
		t.Fatal(err)
	}
	smlFab, err := transport.NewMemory(transport.MemoryConfig{Workers: workers, Handler: smlSwitch.Handle})
	if err != nil {
		t.Fatal(err)
	}
	smlResults := make([][]float32, workers)
	smlWorkers := make([]*switchml.Worker, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		smlWorkers[w] = &switchml.Worker{ID: w, Fabric: smlFab, Cfg: smlCfg, Timeout: 50 * time.Millisecond}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out, err := smlWorkers[w].Reduce(vecs[w])
			if err != nil {
				t.Errorf("switchml worker %d: %v", w, err)
				return
			}
			smlResults[w] = out
		}(w)
	}
	wg.Wait()

	// --- FPISA service ---
	fpCfg := aggservice.Config{Workers: workers, Pool: 4, Modules: 1, Shards: 4,
		Mode: core.ModeApprox, Arch: pisa.BaseArch()}
	fpSwitch, err := aggservice.NewSwitch(fpCfg)
	if err != nil {
		t.Fatal(err)
	}
	fpFab, err := transport.NewMemory(transport.MemoryConfig{Workers: workers, Handler: fpSwitch.Handle})
	if err != nil {
		t.Fatal(err)
	}
	fpResults := make([][]float32, workers)
	fpWorkers := make([]*aggservice.Worker, workers)
	for w := 0; w < workers; w++ {
		fpWorkers[w] = aggservice.NewWorker(w, fpFab, fpCfg)
		fpWorkers[w].Timeout = 50 * time.Millisecond
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out, err := fpWorkers[w].Reduce(vecs[w])
			if err != nil {
				t.Errorf("fpisa worker %d: %v", w, err)
				return
			}
			fpResults[w] = out
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("worker reductions failed")
	}

	// Numerical agreement with the exact sums (quantization tolerance for
	// SwitchML; FPISA-A rounding plus its rare documented overwrites).
	fpLarge := 0
	for i := 0; i < vecLen; i++ {
		if d := math.Abs(float64(smlResults[0][i]) - exact[i]); d > 1e-4+1e-3*math.Abs(exact[i]) {
			t.Errorf("switchml elem %d: %g vs exact %g", i, smlResults[0][i], exact[i])
		}
		if d := math.Abs(float64(fpResults[0][i]) - exact[i]); d > 1e-4+1e-3*math.Abs(exact[i]) {
			fpLarge++
		}
	}
	if float64(fpLarge) > 0.07*vecLen {
		t.Errorf("fpisa had %d/%d large-error elements", fpLarge, vecLen)
	}

	// Protocol structure: SwitchML pays two uplink packets per chunk
	// (exponent + data) and per-element quantization; FPISA pays one
	// small packet per element-chunk and zero conversions.
	expPkts, dataPkts, _ := smlSwitch.Stats()
	if expPkts != dataPkts {
		t.Errorf("switchml rounds unbalanced: %d exp vs %d data", expPkts, dataPkts)
	}
	if smlWorkers[0].QuantizeOps == 0 {
		t.Error("switchml did no quantization work")
	}
	smlChunks := (vecLen + smlCfg.Elems - 1) / smlCfg.Elems
	if got := smlWorkers[0].SentPackets; got != uint64(2*smlChunks) {
		t.Errorf("switchml worker sent %d packets, want %d (two rounds/chunk)", got, 2*smlChunks)
	}
	fpChunks := vecLen / fpCfg.Modules
	if got := fpWorkers[0].SentPackets; got != uint64(fpChunks) {
		t.Errorf("fpisa worker sent %d packets, want %d (one round/chunk)", got, fpChunks)
	}
}
