// Tree: a 2-level aggregation hierarchy over real UDP sockets — two leaf
// switches (3 workers each) feeding one spine, the topology FPISA's
// multi-rack deployments compose (§5 scale-out: rack switches aggregate
// their hosts, the spine aggregates the racks).
//
// Each leaf runs the full switch pipeline on its own socket; a completed
// chunk is not released to the leaf's workers but re-emitted UPWARD as an
// ADD on the leaf's uplink (the leaf dials the spine exactly like a
// worker), and only the spine's aggregate fans back down. The demo proves
// the tree transparent: running in full-FPISA mode on a dyadic-grid
// gradient (every partial sum exact in f32), the 6 workers' tree results
// are BIT-IDENTICAL to one flat 6-worker switch reducing the same
// vectors.
//
// The lifecycle is plumbed through the hierarchy. One reduce runs per job
// incarnation (the slot pool's chunk clock is a stream, not a counter to
// rewind), so between runs the operator recycles the job — evict, then
// re-admit at the leaves, which negotiates the job back up the tree. The
// centerpiece: an operator evicts the job at the SPINE mid-reduce, the
// eviction propagates down the uplinks (epoch-matched lifecycle notices
// bounce the leaves' pending aggregates, each leaf drains and frees its
// range), the workers surface ErrJobEvicted, and after re-admission the
// re-run again matches the flat switch bit for bit.
package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/pisa"
	"fpisa/internal/transport"
)

const (
	nLeaves = 2
	workers = 3 // per leaf
	vecLen  = 2048
)

// gridVecs builds gradients on the 2^-10 dyadic grid with |v| < 1: sums
// of a few thousand such values are exactly representable in f32, so
// addition is association-independent and the tree's different summation
// order cannot change a single bit.
func gridVecs(n, vecLen, salt int) [][]float32 {
	vecs := make([][]float32, n)
	for w := range vecs {
		vecs[w] = make([]float32, vecLen)
		for i := range vecs[w] {
			vecs[w][i] = float32((w*131+i*7+salt)%257-128) / 1024
		}
	}
	return vecs
}

func main() {
	leafCfg := aggservice.Config{
		Workers: workers, Pool: 8, Modules: 2, Shards: 4,
		Dynamic: true, DrainTimeout: 300 * time.Millisecond,
		Mode: core.ModeFull, Arch: pisa.ExtendedArch(),
	}
	spineCfg := aggservice.Config{
		Workers: nLeaves, Pool: 8, Modules: 2, Shards: 4, // the SAME pool: levels self-clock in lockstep
		Dynamic: true, DrainTimeout: 300 * time.Millisecond,
		Mode: core.ModeFull, Arch: pisa.ExtendedArch(),
	}

	// The spine is an UNCHANGED switch whose "workers" are the two leaves.
	spine, err := aggservice.NewSwitch(spineCfg)
	if err != nil {
		log.Fatal(err)
	}
	spine.OnLifecycle = func(job int, ev aggservice.LifecycleEvent) {
		fmt.Printf("  [spine] job %d %s\n", job, ev)
	}
	spineConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer spineConn.Close()
	spineSrv, err := transport.NewUDPServer(spineConn, spineCfg.Ports())
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = spineSrv.Serve(spine.HandleBatch) }()
	spineAddr := spineConn.LocalAddr().(*net.UDPAddr)

	// Each leaf serves its own socket and dials the spine as its uplink;
	// the leaf's initial job is negotiated at the spine during NewSwitch
	// (the first leaf admits it there, the second joins the live
	// incarnation). The leaf fabric doubles as the downlink Pusher: the
	// spine's aggregate is pushed to the leaf's workers asynchronously.
	leaves := make([]*aggservice.Switch, nLeaves)
	leafFabs := make([]*transport.UDP, nLeaves)
	for i := 0; i < nLeaves; i++ {
		i := i
		fab, err := transport.NewUDP(leafCfg.Ports(), func(w int, pkts [][]byte, out *transport.DeliveryList) {
			leaves[i].HandleBatch(w, pkts, out)
		})
		if err != nil {
			log.Fatal(err)
		}
		defer fab.Close()
		leafFabs[i] = fab
		upFab, err := transport.DialUDP(spineAddr, leafCfg.Ports()/leafCfg.Workers*nLeaves)
		if err != nil {
			log.Fatal(err)
		}
		defer upFab.Close()
		cfg := leafCfg
		cfg.Uplink = &aggservice.UplinkConfig{
			Fabric: upFab, LeafID: i, Leaves: nLeaves,
			Control: aggservice.WireControl{Addr: spineAddr},
			Push:    fab,
		}
		if leaves[i], err = aggservice.NewSwitch(cfg); err != nil {
			log.Fatal(err)
		}
		defer leaves[i].Close()
	}
	defer spine.Close()
	fmt.Printf("tree up: %d leaves x %d workers -> spine %s (full FPISA, pool %d at both levels)\n",
		nLeaves, workers, spineAddr, leafCfg.Pool)

	// treeReduce drives one all-reduce across every leaf's workers. Each
	// run dials FRESH worker sockets at its leaf — worker processes come
	// and go between training iterations; only the switches are long-lived.
	treeReduce := func(epochs [nLeaves]uint8, vecs [][]float32) ([][]float32, []error) {
		out := make([][]float32, nLeaves*workers)
		errs := make([]error, nLeaves*workers)
		var wg sync.WaitGroup
		for li := 0; li < nLeaves; li++ {
			wfab, err := transport.DialUDP(leafFabs[li].SwitchAddr(), leafCfg.Ports())
			if err != nil {
				log.Fatal(err)
			}
			defer wfab.Close()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(li, w int, fab transport.Fabric) {
					defer wg.Done()
					wk := aggservice.NewJobWorker(0, w, fab, leafCfg)
					wk.Timeout = 50 * time.Millisecond
					wk.Retries = 500
					wk.Epoch = epochs[li]
					idx := li*workers + w
					out[idx], errs[idx] = wk.Reduce(vecs[idx])
				}(li, w, wfab)
			}
		}
		wg.Wait()
		return out, errs
	}
	// flatReduce runs the reference: one switch, all six workers direct.
	flatReduce := func(vecs [][]float32) [][]float32 {
		flatCfg := leafCfg
		flatCfg.Workers = nLeaves * workers
		flatCfg.Uplink, flatCfg.Dynamic = nil, false
		flat, err := aggservice.NewSwitch(flatCfg)
		if err != nil {
			log.Fatal(err)
		}
		defer flat.Close()
		fab, err := transport.NewUDP(flatCfg.Ports(), flat.HandleBatch)
		if err != nil {
			log.Fatal(err)
		}
		defer fab.Close()
		out := make([][]float32, flatCfg.Workers)
		var wg sync.WaitGroup
		for w := 0; w < flatCfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wk := aggservice.NewJobWorker(0, w, fab, flatCfg)
				wk.Timeout = 50 * time.Millisecond
				wk.Retries = 500
				var err error
				if out[w], err = wk.Reduce(vecs[w]); err != nil {
					log.Fatalf("flat worker %d: %v", w, err)
				}
			}(w)
		}
		wg.Wait()
		return out
	}
	bitIdentical := func(tree, flat [][]float32) bool {
		for w := range tree {
			for i := range tree[w] {
				if tree[w][i] != flat[0][i] {
					fmt.Printf("  MISMATCH worker %d elem %d: tree %g flat %g\n", w, i, tree[w][i], flat[0][i])
					return false
				}
			}
		}
		return true
	}

	// The operator's control path — the same observer frame fpisa-query
	// sends, dialed at whichever switch the verb targets.
	control := func(addr *net.UDPAddr, req []byte) aggservice.AckStatus {
		conn, err := net.DialUDP("udp", nil, addr)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		frame := append([]byte{transport.ObserverID}, req...)
		buf := make([]byte, 64)
		for attempt := 0; attempt < 5; attempt++ {
			if _, err := conn.Write(frame); err != nil {
				log.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				continue
			}
			if _, status, _, _, err := aggservice.DecodeJobAck(buf[:n]); err == nil {
				return status
			}
		}
		log.Fatal("control plane: no ack")
		return 0
	}
	waitVacant := func(switches ...*aggservice.Switch) {
		for _, s := range switches {
			for s.JobPhaseOf(0) != aggservice.PhaseVacant {
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	// recycle rotates the whole tree to a fresh incarnation of job 0: evict
	// every level (the leaves are idle between runs, so the operator talks
	// to each switch directly), then re-admit at the leaves — each leaf's
	// admit negotiates up, so the spine's incarnation is re-created by the
	// first leaf and joined by the second.
	recycle := func() [nLeaves]uint8 {
		for _, fab := range leafFabs {
			control(fab.SwitchAddr(), aggservice.EncodeJobEvict(0))
		}
		control(spineAddr, aggservice.EncodeJobEvict(0))
		waitVacant(append([]*aggservice.Switch{spine}, leaves...)...)
		var epochs [nLeaves]uint8
		for i, fab := range leafFabs {
			st := control(fab.SwitchAddr(), aggservice.EncodeJobAdmit(0))
			epochs[i] = leaves[i].JobEpoch(0)
			fmt.Printf("  [operator] admit job 0 at leaf %d: %v (leaf epoch %d, spine epoch %d)\n",
				i, st, epochs[i], spine.JobEpoch(0))
		}
		return epochs
	}

	fmt.Println("\n-- all-reduce through the tree vs one flat switch --")
	vecs := gridVecs(nLeaves*workers, vecLen, 0)
	results, errs := treeReduce([nLeaves]uint8{0, 0}, vecs)
	for i, err := range errs {
		if err != nil {
			log.Fatalf("tree worker %d: %v", i, err)
		}
	}
	if !bitIdentical(results, flatReduce(vecs)) {
		log.Fatal("tree aggregate diverged from the flat switch")
	}
	for i, l := range leaves {
		st, _ := l.JobStats(0)
		fmt.Printf("  leaf %d: chunks=%d uplink retransmits=%d coalesced result-chunks=%d\n",
			i, st.Completions, l.UplinkRetransmits(0), st.Coalesced)
	}
	spineSt, _ := spine.JobStats(0)
	fmt.Printf("  spine aggregated %d chunks from %d leaf ADDs each; results BIT-IDENTICAL to the flat switch\n",
		spineSt.Completions, nLeaves)

	fmt.Println("\n-- recycle the incarnation tree-wide (one reduce per incarnation) --")
	epochs := recycle()

	fmt.Println("\n-- evict the job at the SPINE mid-reduce: the tree drains top-down --")
	bigVecs := gridVecs(nLeaves*workers, 200_000, 1)
	aborted := make(chan []error, 1)
	go func() {
		_, errs := treeReduce(epochs, bigVecs)
		aborted <- errs
	}()
	for { // wait until aggregates are demonstrably crossing both levels
		if st, _ := spine.JobStats(0); st.Completions > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	status := control(spineAddr, aggservice.EncodeJobEvict(0))
	fmt.Printf("  [operator] evict job 0 at the spine: %v\n", status)
	nEvicted := 0
	for _, err := range <-aborted {
		if errors.Is(err, aggservice.ErrJobEvicted) {
			nEvicted++
		}
	}
	fmt.Printf("  %d/%d workers surfaced ErrJobEvicted; waiting for every level to drain...\n",
		nEvicted, nLeaves*workers)
	waitVacant(append([]*aggservice.Switch{spine}, leaves...)...)
	pending := 0
	for _, l := range leaves {
		pending += l.UplinkPending(0)
	}
	fmt.Printf("  every level vacant, %d uplink chunks still owed (must be 0)\n", pending)

	fmt.Println("\n-- re-admit and re-run: the tree survives the mid-run eviction --")
	epochs = recycle()
	vecs2 := gridVecs(nLeaves*workers, vecLen, 2)
	results2, errs2 := treeReduce(epochs, vecs2)
	for i, err := range errs2 {
		if err != nil {
			log.Fatalf("re-admitted tree worker %d: %v", i, err)
		}
	}
	if !bitIdentical(results2, flatReduce(vecs2)) {
		log.Fatal("re-admitted tree aggregate diverged from the flat switch")
	}
	fmt.Println("  re-run after mid-tree eviction: BIT-IDENTICAL to the flat switch again")
}
