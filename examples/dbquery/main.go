// Dbquery: a Top-N query over floating-point ad revenue, accelerated by
// in-switch comparison pruning (paper §6, Cheetah-style) versus the
// ship-everything baseline.
package main

import (
	"fmt"
	"log"

	"fpisa/internal/query"
)

func main() {
	const workers = 2
	parts := query.Generate(query.DefaultScale(), workers, 7)
	e := query.NewEngine(parts)

	q, err := query.QueryByName("Top-N")
	if err != nil {
		log.Fatal(err)
	}

	base, bCost := e.RunBaseline(q)
	accel, sCost, err := e.RunSwitch(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Top-10 uservisits by FP32 adRevenue:")
	fmt.Printf("%-10s %14s %14s\n", "destURL", "baseline", "in-switch")
	for i := range base.Entries {
		fmt.Printf("%-10d %14.4f %14.4f\n",
			base.Entries[i].Key, base.Entries[i].Val, accel.Entries[i].Val)
	}

	fmt.Printf("\npruning: %d rows -> %d rows to the master (lossless: results identical)\n",
		bCost.RowsToMaster, sCost.RowsToMaster)
	b, s := bCost.BaselineSeconds(workers), sCost.SwitchSeconds(workers)
	fmt.Printf("modeled execution time: %.2fs -> %.2fs (%.2fx, paper Fig. 13: 1.9-2.7x)\n", b, s, b/s)
}
