// Dbquery: the five evaluated database queries (paper Table 2) executed
// IN the network — tuple streams pruned and aggregated by FPISA registers
// on a running switch over real UDP sockets — while a training tenant
// allreduces gradients through the same pipeline. One shared switch, two
// workload classes, one deficit scheduler.
//
// The query tenant is admitted at runtime over the wire (MsgJobAdmit with
// a workload-class descriptor: top-N pruning registers plus group
// accumulators), streams every query's worker partitions through
// MsgTuple batches, and harvests group sums with read-and-reset observer
// drains. Pruning queries must finish bit-identical to the engine's exact
// float64 Reference (comparison pruning is lossless); aggregation queries
// must drain bit-identical to the engine's software switch plan and land
// within accumulation tolerance of the Reference.
package main

import (
	"fmt"
	"log"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/gradients"
	"fpisa/internal/pisa"
	"fpisa/internal/query"
	"fpisa/internal/transport"
)

func main() {
	const (
		workers = 2 // per tenant
		vecLen  = 128
	)
	// Job 0 is the resident training tenant; the second slot range sits in
	// the free list until the query tenant admits over the wire.
	cfg := aggservice.Config{
		Workers: workers, Pool: 8, Modules: 1, Shards: 2,
		Jobs: 1, Capacity: 2, Dynamic: true,
		// Full FPISA so the switch's group sums are bit-exact against the
		// engine's software accumulator (same §3.3 register arithmetic).
		Mode: core.ModeFull, Arch: pisa.ExtendedArch(),
	}
	sw, err := aggservice.NewSwitch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab, err := transport.NewUDP(cfg.Ports(), sw.HandleBatch)
	if err != nil {
		log.Fatal(err)
	}
	defer fab.Close()
	addr := fab.SwitchAddr().String()
	fmt.Printf("FPISA switch on %s: training tenant (job 0) + query tenant (job 1) share %d shards\n",
		addr, sw.Shards())

	// The training tenant keeps allreducing in the background for the whole
	// run — queries must not disturb it, nor it the query results.
	var stop atomic.Bool
	var rounds atomic.Uint64
	var trainWG sync.WaitGroup
	vecs := gradients.NewGenerator(gradients.VGG19, 5).WorkerGradients(workers, vecLen)
	exact := gradients.AggregateExact(vecs)
	trainWG.Add(1)
	go func() {
		defer trainWG.Done()
		trainEpoch := uint8(0)
		for !stop.Load() {
			var wg sync.WaitGroup
			outs := make([][]float32, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					wk := aggservice.NewJobWorker(0, w, fab, cfg)
					wk.Timeout = 100 * time.Millisecond
					wk.Epoch = trainEpoch
					out, err := wk.Reduce(vecs[w])
					if err != nil {
						log.Fatalf("training worker %d: %v", w, err)
					}
					outs[w] = out
				}(w)
			}
			wg.Wait()
			for i := range exact {
				if d := float64(outs[0][i]) - exact[i]; d > 1e-3 || d < -1e-3 {
					log.Fatalf("training round %d drifted at element %d: %g vs %g",
						rounds.Load(), i, outs[0][i], exact[i])
				}
			}
			rounds.Add(1)
			// One reduce per incarnation: recycle job 0's epoch for the next
			// round (the tree/churn lifecycle idiom), leaving job 1 untouched.
			if err := sw.Evict(0); err != nil {
				log.Fatalf("training recycle evict: %v", err)
			}
			for sw.JobPhaseOf(0) != aggservice.PhaseVacant {
				time.Sleep(time.Millisecond)
			}
			if err := sw.Admit(0); err != nil {
				log.Fatalf("training recycle admit: %v", err)
			}
			trainEpoch = sw.JobEpoch(0)
		}
	}()

	// Admit the query tenant at runtime over the observer frame. One class
	// descriptor covers all five queries: the largest pruning register file
	// (top-10) plus the largest group bank (1024 groups); read-and-reset
	// drains recycle both between queries.
	ac := aggservice.AdmitClass{Class: aggservice.ClassQuery, TopN: 10, Groups: 1024}
	epoch, err := admitClass(addr, 1, ac)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted job 1 as %v (epoch %d)\n\n", ac, epoch)

	eng := query.NewEngine(query.Generate(query.DefaultScale(), workers, 7))
	// One tuple lane per worker for the whole tenancy: the stop-and-wait
	// sequence numbers are per-incarnation, not per-query.
	clients := make([]*aggservice.TupleClient, workers)
	for w := range clients {
		clients[w] = aggservice.NewTupleClient(1, w, fab, cfg)
		clients[w].Epoch = epoch
	}
	for _, q := range query.Queries() {
		op := aggservice.OpQueryAgg
		if q.TopN > 0 {
			op = aggservice.OpQueryTopN
		} else if q.Desc.Method == query.Pruning {
			op = aggservice.OpQueryGroupMax
		}

		// Stream the worker partitions through the switch. Workers send
		// sequentially so the fold order matches the engine's row scan
		// (bit-exactness of sums needs it; pruning is lossless either way).
		var survivors []query.Row
		sent := 0
		start := time.Now()
		for w := 0; w < workers; w++ {
			rows := eng.PartRows(q, w)
			keys := make([]uint32, len(rows))
			vals := make([]float32, len(rows))
			for i, r := range rows {
				keys[i], vals[i] = r.Key, r.Val
			}
			alive, err := clients[w].Send(op, keys, vals)
			if err != nil {
				log.Fatalf("%s worker %d: %v", q.Desc.Name, w, err)
			}
			for _, i := range alive {
				survivors = append(survivors, rows[i])
			}
			sent += len(rows)
		}

		ref := eng.Reference(q)
		var got query.Result
		var rowsToMaster int
		// Harvest and recycle: read-and-reset the group bank and clear the
		// pruning registers so the next query starts from zero state.
		entries, err := aggservice.ObserverDrain(addr, 1, aggservice.DrainGroups,
			aggservice.DrainFlagResetPrune, time.Second)
		if err != nil {
			log.Fatalf("%s drain: %v", q.Desc.Name, err)
		}
		if op == aggservice.OpQueryAgg {
			// The drained groups ARE the result; the master only sorts.
			sres, _, err := eng.RunSwitch(q)
			if err != nil {
				log.Fatal(err)
			}
			if len(entries) != len(sres.Entries) {
				log.Fatalf("%s: %d drained groups, engine plan drained %d",
					q.Desc.Name, len(entries), len(sres.Entries))
			}
			for i, e := range entries {
				if e.Key != sres.Entries[i].Key || float64(e.Val) != sres.Entries[i].Val {
					log.Fatalf("%s group %d: wire (%d, %v) != engine plan (%d, %v)",
						q.Desc.Name, i, e.Key, e.Val, sres.Entries[i].Key, sres.Entries[i].Val)
				}
			}
			for i, e := range entries {
				want := ref.Entries[i]
				if e.Key != want.Key {
					log.Fatalf("%s: group key %d != reference %d", q.Desc.Name, e.Key, want.Key)
				}
				if d := math.Abs(float64(e.Val) - want.Val); d > 1e-3*math.Abs(want.Val)+1e-6 {
					log.Fatalf("%s group %d: %v vs reference %v", q.Desc.Name, e.Key, e.Val, want.Val)
				}
			}
			got = sres
			rowsToMaster = len(entries)
		} else {
			// Pruning: only the register survivors cross to the master,
			// which must still compute the EXACT answer from them.
			got = q.Finish(survivors, q.TopN)
			if len(got.Entries) != len(ref.Entries) {
				log.Fatalf("%s: finish on %d survivors gave %d entries, reference %d",
					q.Desc.Name, len(survivors), len(got.Entries), len(ref.Entries))
			}
			for i := range got.Entries {
				if got.Entries[i] != ref.Entries[i] {
					log.Fatalf("%s entry %d: %+v != reference %+v",
						q.Desc.Name, i, got.Entries[i], ref.Entries[i])
				}
			}
			rowsToMaster = len(survivors)
		}

		fmt.Printf("%s — %s via %s: %d rows -> %d to the master in %v\n",
			q.Desc.Name, q.Desc.FPOp, q.Desc.Method, sent, rowsToMaster,
			time.Since(start).Round(time.Millisecond))
		n := min(3, len(got.Entries))
		for i := 0; i < n; i++ {
			var refVal float64
			if i < len(ref.Entries) {
				refVal = ref.Entries[i].Val
			}
			fmt.Printf("  %-12d in-network %16.4f   reference %16.4f\n",
				got.Entries[i].Key, got.Entries[i].Val, refVal)
		}
		if op == aggservice.OpQueryAgg {
			fmt.Println("  drained groups bit-identical to the engine's switch plan; within 1e-3 of float64 reference")
		} else {
			fmt.Printf("  lossless pruning: result from %d survivors bit-identical to the full reference\n", len(survivors))
		}
	}

	stop.Store(true)
	trainWG.Wait()
	st1, _ := sw.JobStats(1)
	fmt.Printf("\ntraining tenant stayed live throughout: %d allreduce rounds (job 0, one incarnation each)\n",
		rounds.Load())
	fmt.Printf("query tenant (%v): %d tuple batches folded (job 1)\n", st1.Class, st1.Completions)
	if rounds.Load() == 0 {
		log.Fatal("training tenant made no progress while queries ran")
	}
	if err := evictJob(addr, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("evicted job 1 — slot range back in the free list")
}

// admitClass admits job with a workload-class descriptor over the observer
// frame and returns the incarnation epoch to stamp into tuple batches.
func admitClass(addr string, job int, ac aggservice.AdmitClass) (uint8, error) {
	req := aggservice.EncodeJobAdmitClass(job, 1, core.DefaultProfile, ac)
	var epoch uint8
	err := observerExchange(addr, req, func(pkt []byte) (bool, error) {
		j, status, ep, _, _, gotAC, derr := aggservice.DecodeJobAckClass(pkt)
		if derr != nil || j != job {
			return false, nil
		}
		if serr := status.Err(); serr != nil {
			return true, fmt.Errorf("switch refuses job %d: %w", job, serr)
		}
		if gotAC != ac {
			return true, fmt.Errorf("switch applied class %v, not %v", gotAC, ac)
		}
		epoch = ep
		return true, nil
	})
	return epoch, err
}

// evictJob releases the job's slot range over the observer frame.
func evictJob(addr string, job int) error {
	return observerExchange(addr, aggservice.EncodeJobEvict(job), func(pkt []byte) (bool, error) {
		j, status, _, _, derr := aggservice.DecodeJobAck(pkt)
		if derr != nil || j != job {
			return false, nil
		}
		if serr := status.Err(); serr != nil {
			return true, fmt.Errorf("switch refuses to evict job %d: %w", job, serr)
		}
		return true, nil
	})
}

// observerExchange sends one observer-framed control request and hands
// replies to decode until it reports the exchange done, retrying on
// timeout (the control datagram is as droppable as any other).
func observerExchange(addr string, req []byte, decode func(pkt []byte) (bool, error)) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	frame := append([]byte{transport.ObserverID}, req...)
	buf := make([]byte, 256)
	for attempt := 0; attempt < 5; attempt++ {
		if _, err := conn.Write(frame); err != nil {
			return err
		}
		if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
			return err
		}
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		if done, derr := decode(buf[:n]); done {
			return derr
		}
	}
	return fmt.Errorf("no usable control reply from %s", addr)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
