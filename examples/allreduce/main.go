// Allreduce: eight workers aggregate gradient vectors through the FPISA
// switch over real UDP sockets on loopback — the paper's distributed-
// training use case (§5) end to end: one protocol round, raw FP32 payloads,
// no host-side quantization.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/gradients"
	"fpisa/internal/pisa"
	"fpisa/internal/stats"
	"fpisa/internal/transport"
)

func main() {
	const (
		workers = 8
		vecLen  = 256
	)
	cfg := aggservice.Config{
		Workers: workers, Pool: 8, Modules: 1, Shards: 4,
		Mode: core.ModeApprox, Arch: pisa.BaseArch(),
	}
	sw, err := aggservice.NewSwitch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab, err := transport.NewUDP(workers, sw.Handle)
	if err != nil {
		log.Fatal(err)
	}
	defer fab.Close()
	fmt.Printf("FPISA switch on %s (%d pipeline shards), %d workers, vector length %d\n",
		fab.SwitchAddr(), sw.Shards(), workers, vecLen)

	// Gradient vectors with the paper's §5.1 statistics.
	gen := gradients.NewGenerator(gradients.VGG19, 1)
	vecs := gen.WorkerGradients(workers, vecLen)

	results := make([][]float32, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := aggservice.NewWorker(w, fab, cfg)
			wk.Timeout = 100 * time.Millisecond
			out, err := wk.Reduce(vecs[w])
			if err != nil {
				log.Fatalf("worker %d: %v", w, err)
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	exact := gradients.AggregateExact(vecs)
	errs := make([]float64, len(exact))
	large := 0
	for i := range exact {
		errs[i] = abs(float64(results[0][i]) - exact[i])
		if errs[i] > 1e-3 {
			large++ // FPISA-A overwrite sites (§4.3): rare, bounded
		}
	}
	adds, dups, completions := sw.Stats()
	fmt.Printf("reduced %d elements in %v over UDP (adds=%d dups=%d chunks=%d)\n",
		vecLen, elapsed.Round(time.Millisecond), adds, dups, completions)
	fmt.Printf("element 0: %g (exact %.8g)\n", results[0][0], exact[0])
	fmt.Printf("median |error| %.3g; %d/%d elements hit FPISA-A's documented overwrite error\n",
		stats.Median(errs), large, len(exact))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
