// Allreduce: two tenant training jobs — four workers each — aggregate
// gradient vectors concurrently through ONE FPISA switch over real UDP
// sockets on loopback. This is the paper's distributed-training use case
// (§5) end to end under multi-job tenancy: one protocol round per job,
// no host-side quantization state, and per-job slot partitions plus stats
// keeping the tenants fully isolated.
//
// The two tenants negotiate DIFFERENT numeric profiles at admission: job 0
// runs guarded round-to-nearest f32 (full-fidelity payloads, two guard
// bits against swamping), job 1 runs truncating bfloat16 — halving its ADD
// payload on the same switch, through the same slot pools, in the same
// protocol round. Weights share pipeline time; profiles share precision.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/gradients"
	"fpisa/internal/pisa"
	"fpisa/internal/stats"
	"fpisa/internal/transport"
)

func main() {
	const (
		jobs    = 2
		workers = 4 // per job
		vecLen  = 256
	)
	profiles := []core.NumericProfile{
		{Format: core.FormatF32, Guard: 2, Rounding: core.RoundingRNE},
		{Format: core.FormatBF16},
	}
	cfg := aggservice.Config{
		Workers: workers, Pool: 8, Modules: 1, Shards: 4, Jobs: jobs,
		MaxOutstanding: 12, // admission quota per tenant
		Profiles:       profiles,
		Mode:           core.ModeApprox, Arch: pisa.BaseArch(),
	}
	sw, err := aggservice.NewSwitch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab, err := transport.NewUDP(cfg.Ports(), sw.HandleBatch)
	if err != nil {
		log.Fatal(err)
	}
	defer fab.Close()
	fmt.Printf("FPISA switch on %s (%d pipeline shards), %d jobs x %d workers, vector length %d\n",
		fab.SwitchAddr(), sw.Shards(), jobs, workers, vecLen)
	for j := 0; j < jobs; j++ {
		add := aggservice.EncodeAddProfile(j, 0, 0, profiles[j], make([]float32, cfg.Modules))
		fmt.Printf("  job %d speaks %s: %d-byte ADDs (%d value bytes/element)\n",
			j, profiles[j], len(add), profiles[j].ValueBytes())
	}

	// Distinct gradient statistics per tenant (paper §5.1 profiles).
	jobVecs := [jobs][][]float32{
		gradients.NewGenerator(gradients.VGG19, 1).WorkerGradients(workers, vecLen),
		gradients.NewGenerator(gradients.ResNet50, 2).WorkerGradients(workers, vecLen),
	}

	var results [jobs][][]float32
	var wks [jobs][]*aggservice.Worker
	for j := range results {
		results[j] = make([][]float32, workers)
		wks[j] = make([]*aggservice.Worker, workers)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for j := 0; j < jobs; j++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(j, w int) {
				defer wg.Done()
				wk := aggservice.NewJobWorker(j, w, fab, cfg)
				wk.Timeout = 100 * time.Millisecond
				wks[j][w] = wk
				out, err := wk.Reduce(jobVecs[j][w])
				if err != nil {
					log.Fatalf("job %d worker %d: %v", j, w, err)
				}
				results[j][w] = out
			}(j, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("both jobs reduced %d elements each in %v over one shared switch\n",
		vecLen, elapsed.Round(time.Millisecond))
	for j := 0; j < jobs; j++ {
		var pkts, dgrams, shrinks, grows uint64
		last := 0
		for _, wk := range wks[j] {
			pkts += wk.SentPackets
			dgrams += wk.SentDatagrams
			shrinks += wk.BatchShrinks
			grows += wk.BatchGrows
			last = wk.LastBatch
		}
		fmt.Printf("job %d adaptive batching: %d ADDs in %d send vectors (%.1f chunks/vector), batch %d at finish (shrinks=%d grows=%d)\n",
			j, pkts, dgrams, float64(pkts)/float64(max(dgrams, 1)), last, shrinks, grows)
	}

	for j := 0; j < jobs; j++ {
		exact := gradients.AggregateExact(jobVecs[j])
		errs := make([]float64, len(exact))
		large := 0
		for i := range exact {
			errs[i] = abs(float64(results[j][0][i]) - exact[i])
			if errs[i] > 1e-3 {
				large++
			}
		}
		st, _ := sw.JobStats(j)
		fmt.Printf("job %d (%s): adds=%d retrans=%d chunks=%d quotaDrops=%d | element 0: %g (exact %.8g)\n",
			j, st.Profile, st.Adds, st.Retransmits, st.Completions, st.QuotaDrops, results[j][0][0], exact[0])
		// Job 0's rare large errors are FPISA-A overwrite sites (§4.3);
		// job 1's error floor is its own choice — bfloat16 quantization,
		// the precision it traded for half-width payloads.
		fmt.Printf("job %d: median |error| %.3g vs float64 exact; %d/%d elements above 1e-3\n",
			j, stats.Median(errs), large, len(exact))
	}
	adds, dups, completions := sw.Stats()
	fmt.Printf("switch totals: adds=%d dups=%d chunks=%d — per-job ledgers above sum to these\n",
		adds, dups, completions)
	// The wire-syscall ledger: how many kernel entries the whole run cost,
	// and how many datagrams each one moved — the kernel-batching win the
	// sendmmsg/recvmmsg backend buys over one syscall per datagram.
	ss := fab.SyscallStats()
	fmt.Printf("wire I/O (%s): %d syscalls moved %d datagrams — %.2f datagrams/syscall (sendmmsg=%d recvmmsg=%d fallback=%d sendErrors=%d)\n",
		fab.Backend(), ss.Syscalls(), ss.SentDatagrams+ss.RecvDatagrams, ss.DatagramsPerSyscall(),
		ss.Sendmmsg, ss.Recvmmsg, ss.SendFallback+ss.RecvFallback, ss.SendErrors)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
