// Telemetry: floating-point traffic telemetry inside the switch — the
// §7 "new design options" workload, run as a first-class tenant on the
// shared multi-tenant switch over real UDP sockets, concurrently with a
// training tenant allreducing through the same pipeline shards.
//
// The telemetry tenant admits with a workload-class descriptor (16 LPM
// traffic classes) and streams flow samples as MsgTuple batches: each
// sample's key is LPM-classified by its top bits, its FP32 byte count
// accumulates in the class's utilization register, and every sample feeds
// a space-saving heavy-hitter table and a log2 size histogram. A
// collector drains the utilization registers with read-and-reset observer
// frames every interval — repeated same-register adds deliberately ride
// the §3.3 sticky-overflow semantics, so a real deployment drains within
// the register's dynamic range exactly as done here — and the harvest
// must match host-side accounting to float32 accumulation tolerance.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/gradients"
	"fpisa/internal/pisa"
	"fpisa/internal/stats"
	"fpisa/internal/transport"
)

func main() {
	const (
		workers   = 2  // per tenant
		classes   = 16 // LPM traffic classes (top 4 key bits)
		intervals = 3
		tick      = 100 // samples between collector drains
		vecLen    = 128
	)
	cfg := aggservice.Config{
		Workers: workers, Pool: 8, Modules: 1, Shards: 2, Jobs: 2,
		Classes: []aggservice.AdmitClass{
			{}, // job 0: training
			{Class: aggservice.ClassTelemetry, Groups: classes},
		},
		Mode: core.ModeFull, Arch: pisa.ExtendedArch(),
	}
	sw, err := aggservice.NewSwitch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fab, err := transport.NewUDP(cfg.Ports(), sw.HandleBatch)
	if err != nil {
		log.Fatal(err)
	}
	defer fab.Close()
	addr := fab.SwitchAddr().String()
	fmt.Printf("FPISA switch on %s: training tenant (job 0) + telemetry tenant (job 1, %v)\n",
		addr, sw.JobClass(1))

	// The training tenant allreduces for the whole run; telemetry must not
	// disturb it, nor it the telemetry sketches.
	var stop atomic.Bool
	var rounds atomic.Uint64
	var trainWG sync.WaitGroup
	vecs := gradients.NewGenerator(gradients.ResNet50, 3).WorkerGradients(workers, vecLen)
	exact := gradients.AggregateExact(vecs)
	trainWG.Add(1)
	go func() {
		defer trainWG.Done()
		epoch := uint8(0)
		for !stop.Load() {
			var wg sync.WaitGroup
			outs := make([][]float32, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					wk := aggservice.NewJobWorker(0, w, fab, cfg)
					wk.Timeout = 100 * time.Millisecond
					wk.Epoch = epoch
					out, err := wk.Reduce(vecs[w])
					if err != nil {
						log.Fatalf("training worker %d: %v", w, err)
					}
					outs[w] = out
				}(w)
			}
			wg.Wait()
			for i := range exact {
				if d := float64(outs[0][i]) - exact[i]; d > 1e-3 || d < -1e-3 {
					log.Fatalf("training drifted at element %d: %g vs %g", i, outs[0][i], exact[i])
				}
			}
			rounds.Add(1)
			// One reduce per incarnation: recycle job 0's epoch.
			if err := sw.Evict(0); err != nil {
				log.Fatalf("training recycle evict: %v", err)
			}
			for sw.JobPhaseOf(0) != aggservice.PhaseVacant {
				time.Sleep(time.Millisecond)
			}
			if err := sw.Admit(0); err != nil {
				log.Fatalf("training recycle admit: %v", err)
			}
			epoch = sw.JobEpoch(0)
		}
	}()

	// A skewed flow mix per interval: two dominant flows (classes 1 and 10)
	// plus a long tail across all classes. The host mirrors what the switch
	// should account, for verification only — the data path never needs it.
	rng := rand.New(rand.NewSource(11))
	genInterval := func() ([]uint32, []float32) {
		var keys []uint32
		var vals []float32
		flow := func(key uint32, n int, size float32) {
			for i := 0; i < n; i++ {
				keys = append(keys, key)
				vals = append(vals, size)
			}
		}
		flow(0x10000001, 400, 1500)
		flow(0xA0000002, 250, 900)
		for i := 0; i < 300; i++ {
			flow(rng.Uint32(), 1, float32(64+rng.Intn(1400)))
		}
		rng.Shuffle(len(keys), func(i, j int) {
			keys[i], keys[j] = keys[j], keys[i]
			vals[i], vals[j] = vals[j], vals[i]
		})
		return keys, vals
	}

	cl := aggservice.NewTupleClient(1, 0, fab, cfg)
	// Host mirror of the switch's log2 size histogram (drained at the end).
	mirrorHist := stats.MustNewLogHistogram(2, 0, 32)

	fmt.Printf("\nper-class utilization drained each interval (MB), collector tick every %d samples:\n", tick)
	fmt.Printf("%-10s %10s %10s %10s %14s\n", "interval", "class 1", "class 10", "other", "vs host mirror")
	for it := 1; it <= intervals; it++ {
		keys, vals := genInterval()
		mirror := make([]float64, classes)
		for i := range keys {
			mirror[keys[i]>>28] += float64(vals[i])
			mirrorHist.Observe(float64(vals[i]))
		}
		// Stream the interval, draining the utilization registers at every
		// collector tick so per-class sums stay inside the register's
		// dynamic range (§3.3: repeated same-slot adds are sticky-overflow
		// by design — the drain cadence IS the accuracy contract).
		harvested := make([]float64, classes)
		for base := 0; base < len(keys); base += tick {
			end := base + tick
			if end > len(keys) {
				end = len(keys)
			}
			if _, err := cl.Send(aggservice.OpTelemetry, keys[base:end], vals[base:end]); err != nil {
				log.Fatalf("interval %d: %v", it, err)
			}
			entries, err := aggservice.ObserverDrain(addr, 1, aggservice.DrainGroups, 0, time.Second)
			if err != nil {
				log.Fatalf("interval %d drain: %v", it, err)
			}
			for _, e := range entries {
				harvested[e.Key] += float64(e.Val)
			}
		}
		var other float64
		for c := 0; c < classes; c++ {
			if d := math.Abs(harvested[c] - mirror[c]); d > 1e-3*mirror[c]+1e-6 {
				log.Fatalf("interval %d class %d: drained %v, host mirror %v", it, c, harvested[c], mirror[c])
			}
			if c != 1 && c != 10 {
				other += harvested[c]
			}
		}
		fmt.Printf("%-10d %10.3f %10.3f %10.3f %14s\n",
			it, harvested[1]/1e6, harvested[10]/1e6, other/1e6, "exact")
	}

	// The heavy-hitter table accumulated across the whole run: the two
	// dominant flows must own the top rows.
	hh, err := aggservice.ObserverDrain(addr, 1, aggservice.DrainHeavyHitters, 0, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if len(hh) < 2 || hh[0].Key != 0x10000001 || hh[1].Key != 0xA0000002 {
		log.Fatalf("heavy hitters %v: want flows 0x10000001, 0xA0000002 on top", hh)
	}
	fmt.Println("\nheavy hitters (space-saving table, drained once):")
	for i, e := range hh {
		if i == 3 {
			break
		}
		fmt.Printf("  flow 0x%08X  ~%.1f MB\n", e.Key, float64(e.Val)/1e6)
	}

	// The sample-size histogram: drained bins must match the host mirror
	// bin for bin (counting is integer — no tolerance needed).
	hd, err := aggservice.ObserverDrain(addr, 1, aggservice.DrainHistogram, 0, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	want := map[uint32]float32{}
	for _, b := range mirrorHist.Bins() {
		if b.Count > 0 {
			want[uint32(b.Exp)] = float32(b.Count)
		}
	}
	if len(hd) != len(want) {
		log.Fatalf("histogram drain has %d bins, host mirror %d", len(hd), len(want))
	}
	for _, e := range hd {
		if want[e.Key] != e.Val {
			log.Fatalf("histogram bin 2^%d: drained %v, mirror %v", e.Key, e.Val, want[e.Key])
		}
	}
	fmt.Println("\npacket-size distribution (log2 bins, drained == host mirror):")
	fmt.Print(mirrorHist.String())

	stop.Store(true)
	trainWG.Wait()
	st, _ := sw.JobStats(1)
	fmt.Printf("telemetry tenant folded %d samples in %d batches; training ran %d allreduce rounds alongside\n",
		st.Adds, st.Completions, rounds.Load())
	if rounds.Load() == 0 {
		log.Fatal("training tenant made no progress while telemetry streamed")
	}
}
