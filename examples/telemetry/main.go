// Telemetry: floating-point link-utilization accounting inside the switch
// — the kind of in-switch resource-allocation computation the paper's §7
// points to as a new design option FPISA enables. Per-port FP32 byte rates
// accumulate in FPISA slots on the pipeline; a collector drains them with
// READ+RESET packets each interval.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fpisa"
)

func main() {
	const (
		ports     = 4
		intervals = 3
		samples   = 50
	)
	sw, err := fpisa.NewSwitchSim(fpisa.ModeApprox, 1, ports, false)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	fmt.Println("per-port FP32 utilization accumulated in-switch (GB per interval):")
	fmt.Printf("%-10s", "interval")
	for p := 0; p < ports; p++ {
		fmt.Printf("   port%d", p)
	}
	fmt.Println()

	for it := 1; it <= intervals; it++ {
		// Data plane: each packet adds its (fractional) gigabytes to its
		// port's slot.
		expect := make([]float64, ports)
		for i := 0; i < samples; i++ {
			port := rng.Intn(ports)
			gb := float32(rng.ExpFloat64() * 0.2)
			if _, err := sw.Add(port, []float32{gb}); err != nil {
				log.Fatal(err)
			}
			expect[port] += float64(gb)
		}
		// Control plane: drain and reset each interval.
		fmt.Printf("%-10d", it)
		for p := 0; p < ports; p++ {
			vals, err := sw.ReadReset(p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %7.3f", vals[0])
			if d := float64(vals[0]) - expect[p]; d > 1e-3 || d < -1e-3 {
				log.Fatalf("port %d drifted: got %g want %g", p, vals[0], expect[p])
			}
		}
		fmt.Println()
	}
	fmt.Println("drained values match host-side accounting — no CPU in the data path.")
}
