// Churn: the runtime job lifecycle control plane end to end. One FPISA
// switch serves a long-lived training job (job 0) over real UDP sockets
// while an operator admits and evicts other jobs mid-flight through the
// out-of-band observer frame — the switch is never restarted, job 0's
// all-reduce never stalls, and the evicted job's slot range is recycled
// for the next tenant (watch the slot ranges move through the indirection
// table). A final eviction lands mid-reduce to show workers surfacing
// ErrJobEvicted instead of retransmitting forever.
//
// The churn tenants are admitted as WEIGHTED jobs (-weight, default 4):
// each admit carries a deficit-round-robin scheduler weight the switch
// echoes in its ack, so while they run alongside the long-lived job 0
// (weight 1) their new-chunk binds get -weight shares of pipeline time.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"fpisa/internal/aggservice"
	"fpisa/internal/core"
	"fpisa/internal/gradients"
	"fpisa/internal/pisa"
	"fpisa/internal/transport"
)

const (
	workers = 3 // per job
	vecLen  = 512
)

func main() {
	weight := flag.Int("weight", 4, "fair-scheduler weight for the churn tenants (job 0 keeps weight 1)")
	flag.Parse()
	cfg := aggservice.Config{
		Workers: workers, Pool: 4, Modules: 1, Shards: 4,
		Jobs: 1, Capacity: 3, Dynamic: true,
		MaxOutstanding: 8, DrainTimeout: 500 * time.Millisecond,
		Mode: core.ModeApprox, Arch: pisa.BaseArch(),
	}
	sw, err := aggservice.NewSwitch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sw.OnLifecycle = func(job int, ev aggservice.LifecycleEvent) {
		if base, n, ok := sw.JobRange(job); ok {
			fmt.Printf("  [switch] job %d %s — slots %d..%d\n", job, ev, base, base+n-1)
			return
		}
		fmt.Printf("  [switch] job %d %s — range back on the free-list\n", job, ev)
	}
	fab, err := transport.NewUDP(cfg.Ports(), sw.HandleBatch)
	if err != nil {
		log.Fatal(err)
	}
	defer fab.Close()
	fmt.Printf("FPISA switch on %s: %d shards, capacity %d jobs x %d workers, dynamic lifecycle on\n",
		fab.SwitchAddr(), sw.Shards(), sw.Jobs(), workers)

	// The operator's control path: observer-framed datagrams to the same
	// switch socket, exactly what `fpisa-query -admit/-evict` sends. The
	// ack echoes the job's incarnation epoch — the octet the admitted
	// job's workers must stamp into their ADDs.
	control := func(req []byte) (aggservice.AckStatus, uint8, int) {
		conn, err := net.DialUDP("udp", nil, fab.SwitchAddr())
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		frame := append([]byte{transport.ObserverID}, req...)
		buf := make([]byte, 64)
		for attempt := 0; attempt < 5; attempt++ {
			if _, err := conn.Write(frame); err != nil {
				log.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				continue
			}
			if _, status, epoch, w, err := aggservice.DecodeJobAck(buf[:n]); err == nil {
				return status, epoch, w
			}
		}
		log.Fatal("control plane: no ack")
		return 0, 0, 0
	}

	reduce := func(job int, epoch uint8, vecs [][]float32) ([][]float32, []error) {
		out := make([][]float32, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wk := aggservice.NewJobWorker(job, w, fab, cfg)
				wk.Timeout = 50 * time.Millisecond
				wk.Epoch = epoch
				out[w], errs[w] = wk.Reduce(vecs[w])
			}(w)
		}
		wg.Wait()
		return out, errs
	}
	admit := func(job int) uint8 {
		// The admit names the tenant's scheduler weight; the ack echoes the
		// weight the switch applied alongside the incarnation epoch — both
		// are what the operator hands to the job's workers.
		status, epoch, w := control(aggservice.EncodeJobAdmitWeight(job, *weight))
		fmt.Printf("  [operator] admit job %d: %v (weight %d, epoch %d)\n", job, status, w, epoch)
		return epoch
	}
	evict := func(job int) {
		status, _, _ := control(aggservice.EncodeJobEvict(job))
		fmt.Printf("  [operator] evict job %d: %v\n", job, status)
	}

	// Job 0: the long-lived tenant, reducing throughout the churn below.
	vecs0 := gradients.NewGenerator(gradients.VGG19, 1).WorkerGradients(workers, vecLen)
	var results0 [][]float32
	var errs0 []error
	done0 := make(chan struct{})
	go func() {
		defer close(done0)
		results0, errs0 = reduce(0, 0, vecs0)
	}()

	// Churn: admit job 1, reduce, evict it; its freed slot range is then
	// handed to job 2 — no restart, no disturbance to job 0.
	fmt.Println("\n-- admit job 1 while job 0 reduces --")
	epoch1 := admit(1)
	vecs1 := gradients.NewGenerator(gradients.ResNet50, 2).WorkerGradients(workers, 128)
	if _, errs := reduce(1, epoch1, vecs1); firstErr(errs) != nil {
		log.Fatalf("job 1: %v", firstErr(errs))
	}
	st1, _ := sw.JobStats(1)
	fmt.Printf("  job 1 reduced 128 elements: adds=%d chunks=%d cacheBytes=%d\n",
		st1.Adds, st1.Completions, st1.CacheBytes)
	evict(1)

	fmt.Println("\n-- admit job 2 into the recycled range --")
	epoch2 := admit(2)
	vecs2 := gradients.NewGenerator(gradients.BERT, 3).WorkerGradients(workers, 128)
	if _, errs := reduce(2, epoch2, vecs2); firstErr(errs) != nil {
		log.Fatalf("job 2: %v", firstErr(errs))
	}
	fmt.Println("  job 2 reduced 128 elements on job 1's former slots")

	// Evict job 2 mid-reduce: its workers learn through AckDraining
	// notices and fail fast with ErrJobEvicted.
	fmt.Println("\n-- evict job 2 mid-reduce --")
	bigVecs := gradients.NewGenerator(gradients.BERT, 4).WorkerGradients(workers, 100_000)
	evicted := make(chan []error, 1)
	go func() {
		_, errs := reduce(2, epoch2, bigVecs)
		evicted <- errs
	}()
	for { // wait until the reduce is demonstrably in flight
		if st, _ := sw.JobStats(2); st.Completions > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	evict(2)
	for _, err := range <-evicted {
		fmt.Printf("  reduce aborted: %v (ErrJobEvicted: %v)\n", err, errors.Is(err, aggservice.ErrJobEvicted))
	}

	// Re-admit job 2: the new incarnation's epoch makes any datagram still
	// buffered from the evicted incarnation visibly stale — the wire-epoch
	// fix for the limitation the old doc.go documented.
	fmt.Println("\n-- re-admit job 2: stale datagrams from the old incarnation bounce --")
	for sw.JobPhaseOf(2) != aggservice.PhaseVacant {
		time.Sleep(5 * time.Millisecond) // let the drain release the range
	}
	epoch2b := admit(2)
	wkStale := aggservice.NewJobWorker(2, 0, fab, cfg)
	wkStale.Epoch = epoch2 // the evicted incarnation's octet
	wkStale.Timeout = 20 * time.Millisecond
	wkStale.Retries = 2
	if _, err := wkStale.Reduce(vecs2[0]); errors.Is(err, aggservice.ErrJobEvicted) {
		fmt.Printf("  stale epoch-%d worker refused: %v\n", epoch2, err)
	}
	staleRejects := sw.Rejects().Stale
	fmt.Printf("  switch counted %d stale ADDs; fresh epoch is %d\n", staleRejects, epoch2b)

	// Job 0 sailed through all of it.
	<-done0
	if err := firstErr(errs0); err != nil {
		log.Fatalf("job 0: %v", err)
	}
	exact := gradients.AggregateExact(vecs0)
	worst := 0.0
	for i := range exact {
		if d := abs(float64(results0[0][i]) - exact[i]); d > worst {
			worst = d
		}
	}
	st0, _ := sw.JobStats(0)
	fmt.Printf("\njob 0 finished untouched: adds=%d chunks=%d, worst |error| %.3g vs exact\n",
		st0.Adds, st0.Completions, worst)
	r := sw.Rejects()
	fmt.Printf("rejects: crossJob=%d (must be 0), draining=%d (job 2's refused binds), badJob=%d (stragglers after eviction), backpressure=%d (fair-scheduler defers)\n",
		r.CrossJob, r.Draining, r.BadJob, r.Backpressure)
	if r.CrossJob != 0 {
		log.Fatal("tenant isolation violated")
	}
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
