// Quickstart: aggregate floating-point values exactly the way a
// programmable switch running FPISA would — first with the software model,
// then on the simulated PISA pipeline with real packets.
package main

import (
	"fmt"
	"log"

	"fpisa"
)

func main() {
	// One-shot: sum values through a single FPISA-A slot.
	sum, err := fpisa.Sum(fpisa.ModeApprox, []float32{3.0, 1.0, -0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FPISA-A sum(3, 1, -0.5) = %g\n", sum)

	// The paper's Fig. 4 walkthrough on the simulated switch pipeline.
	sw, err := fpisa.NewSwitchSim(fpisa.ModeApprox, 1, 8, false)
	if err != nil {
		log.Fatal(err)
	}
	sw.Add(0, []float32{3.0})
	running, _ := sw.Add(0, []float32{1.0})
	fmt.Printf("pipeline 3.0 + 1.0 = %g (renormalized by the egress LPM table)\n", running[0])

	// FPISA-A's documented approximation: exponent gaps beyond the 7-bit
	// headroom overwrite the accumulator; full FPISA (with the paper's
	// hardware extensions) computes exactly.
	a, _ := fpisa.Sum(fpisa.ModeApprox, []float32{1, 1024})
	f, _ := fpisa.Sum(fpisa.ModeFull, []float32{1, 1024})
	fmt.Printf("1 + 1024: FPISA-A = %g (overwrite), FPISA = %g (exact)\n", a, f)

	// Resource cost on existing hardware — the paper's Table 3.
	fmt.Println("\nCompiled resource utilization (base Tofino-like switch):")
	fmt.Print(sw.Utilization())
	fmt.Printf("parallel modules per pipeline: base=%d, with §4.2 extensions=%d\n",
		fpisa.MaxModules(false), fpisa.MaxModules(true))
}
